#include "synthesis/encoder.hpp"

#include <bit>

#include "util/check.hpp"
#include "util/math.hpp"

namespace synccount::synthesis {

using counting::Symmetry;

void SynthesisSpec::validate() const {
  SC_CHECK(n >= 1 && n <= 8, "synthesis supports 1 <= n <= 8");
  SC_CHECK(f >= 0, "resilience must be non-negative");
  SC_CHECK(n > 3 * f, "synchronous counting requires n > 3f");
  SC_CHECK(modulus >= 2, "counter modulus must be at least 2");
  SC_CHECK(num_states >= modulus, "need at least c states to count modulo c");
  SC_CHECK(num_states <= 16, "state budget too large for synthesis");
  SC_CHECK(max_time >= 1 && max_time <= 64, "time bound must be in [1, 64]");
  const auto vecs = util::checked_pow(num_states, static_cast<unsigned>(n));
  SC_CHECK(vecs.has_value() && *vecs <= (1ULL << 22),
           "|X|^n too large: shrink n or the state budget");
}

Encoder::Encoder(const SynthesisSpec& spec) : spec_(spec) {
  spec_.validate();
  vecs_per_node_ = util::ipow(spec_.num_states, static_cast<unsigned>(spec_.n));
  const int node_dim = spec_.symmetry == Symmetry::kPerNode ? spec_.n : 1;
  g_base_ = 1;
  const auto g_count = static_cast<std::uint64_t>(node_dim) * vecs_per_node_ * spec_.num_states;
  h_base_ = static_cast<int>(1 + g_count);
  const auto h_count = static_cast<std::uint64_t>(node_dim) * spec_.num_states * spec_.modulus;
  next_var_ = static_cast<int>(h_base_ + h_count);
  build();
  cnf_.num_vars = std::max(cnf_.num_vars, next_var_ - 1);
}

sat::Var Encoder::fresh() { return next_var_++; }

sat::Var Encoder::g_var(int node, std::uint64_t vec, std::uint64_t target) const {
  const int nd = spec_.symmetry == Symmetry::kPerNode ? node : 0;
  return g_base_ + static_cast<int>((static_cast<std::uint64_t>(nd) * vecs_per_node_ + vec) *
                                        spec_.num_states +
                                    target);
}

sat::Var Encoder::h_var(int node, std::uint64_t state, std::uint64_t out) const {
  const int nd = spec_.symmetry == Symmetry::kPerNode ? node : 0;
  return h_base_ + static_cast<int>((static_cast<std::uint64_t>(nd) * spec_.num_states + state) *
                                        spec_.modulus +
                                    out);
}

void Encoder::build() {
  const auto S = spec_.num_states;
  const auto c = spec_.modulus;
  const int n = spec_.n;
  const int node_dim = spec_.symmetry == Symmetry::kPerNode ? n : 1;
  // Ranks range over [0, max_time - 1]: a rank-j configuration enters the
  // good set within j+1 steps, so worst-case stabilisation <= max_time.
  const int R = spec_.max_time - 1;

  // --- One-hot g and h -----------------------------------------------------
  for (int nd = 0; nd < node_dim; ++nd) {
    for (std::uint64_t vec = 0; vec < vecs_per_node_; ++vec) {
      std::vector<sat::ExtLit> alo;
      for (std::uint64_t s = 0; s < S; ++s) alo.push_back(g_var(nd, vec, s));
      cnf_.add(alo);
      for (std::uint64_t s1 = 0; s1 < S; ++s1) {
        for (std::uint64_t s2 = s1 + 1; s2 < S; ++s2) {
          cnf_.add({-g_var(nd, vec, s1), -g_var(nd, vec, s2)});
        }
      }
    }
    for (std::uint64_t x = 0; x < S; ++x) {
      std::vector<sat::ExtLit> alo;
      for (std::uint64_t o = 0; o < c; ++o) alo.push_back(h_var(nd, x, o));
      cnf_.add(alo);
      for (std::uint64_t o1 = 0; o1 < c; ++o1) {
        for (std::uint64_t o2 = o1 + 1; o2 < c; ++o2) {
          cnf_.add({-h_var(nd, x, o1), -h_var(nd, x, o2)});
        }
      }
    }
  }
  // Symmetry breaking: outputs are invariant under rotation, so fix state 0
  // of (the first) node to output 0.
  cnf_.add({h_var(0, 0, 0)});

  // Rank-cap selectors for incremental time sweeps.
  rank_exceeds_.resize(static_cast<std::size_t>(std::max(R, 0)));
  for (auto& v : rank_exceeds_) v = fresh();

  std::vector<std::uint64_t> pow_s(static_cast<std::size_t>(n) + 1);
  pow_s[0] = 1;
  for (int i = 0; i < n; ++i) {
    pow_s[static_cast<std::size_t>(i) + 1] = pow_s[static_cast<std::size_t>(i)] * S;
  }

  // Table index of the vector as *seen by* absolute node v when the full
  // network state is `full` (indexed by absolute sender id).
  auto vec_index_for = [&](int v, const std::vector<std::uint64_t>& full) {
    std::uint64_t idx = 0;
    for (int u = 0; u < n; ++u) {
      const int sender = spec_.symmetry == Symmetry::kCyclic ? (v + u) % n : u;
      idx += full[static_cast<std::size_t>(sender)] * pow_s[static_cast<std::size_t>(u)];
    }
    return idx;
  };

  // --- Per faulty set ------------------------------------------------------
  const std::uint32_t limit = 1U << n;
  for (std::uint32_t mask = 0; mask < limit; ++mask) {
    if (std::popcount(mask) > spec_.f) continue;
    std::vector<int> faulty, correct;
    for (int i = 0; i < n; ++i) {
      if (mask & (1U << i)) {
        faulty.push_back(i);
      } else {
        correct.push_back(i);
      }
    }
    const int P = static_cast<int>(correct.size());
    const std::uint64_t configs = util::ipow(S, static_cast<unsigned>(P));
    const std::uint64_t byz = util::ipow(S, static_cast<unsigned>(faulty.size()));

    std::vector<sat::Var> Gv(configs);
    for (auto& v : Gv) v = fresh();
    std::vector<sat::Var> Uv(configs * static_cast<std::uint64_t>(R));
    for (auto& v : Uv) v = fresh();
    auto u = [&](std::uint64_t e, int j) {  // "rank(e) >= j", j in [1, R]
      return Uv[e * static_cast<std::uint64_t>(R) + static_cast<std::uint64_t>(j - 1)];
    };
    for (std::uint64_t e = 0; e < configs; ++e) {
      for (int j = 1; j < R; ++j) cnf_.add({-u(e, j + 1), u(e, j)});
      // rank(e) >= j implies the global "some rank >= j" selector.
      for (int j = 1; j <= R; ++j) cnf_.add({-u(e, j), rank_exceeds_[static_cast<std::size_t>(j - 1)]});
    }

    // can[e][p][s]: upper bound on "the adversary can steer correct node p
    // from configuration e into state s" (only the g -> can direction is
    // encoded; see the header).
    std::vector<sat::Var> can(configs * static_cast<std::uint64_t>(P) * S);
    auto can_var = [&](std::uint64_t e, int p, std::uint64_t s) -> sat::Var& {
      return can[(e * static_cast<std::uint64_t>(P) + static_cast<std::uint64_t>(p)) * S + s];
    };

    std::vector<std::uint64_t> cfg(static_cast<std::size_t>(P));
    std::vector<std::uint64_t> full(static_cast<std::size_t>(n));
    for (std::uint64_t e = 0; e < configs; ++e) {
      std::uint64_t rem = e;
      for (int p = 0; p < P; ++p) {
        cfg[static_cast<std::size_t>(p)] = rem % S;
        rem /= S;
        full[static_cast<std::size_t>(correct[static_cast<std::size_t>(p)])] =
            cfg[static_cast<std::size_t>(p)];
      }
      const bool deterministic = faulty.empty();
      if (!deterministic) {
        for (int p = 0; p < P; ++p) {
          for (std::uint64_t s = 0; s < S; ++s) can_var(e, p, s) = fresh();
        }
      }
      for (std::uint64_t bz = 0; bz < byz; ++bz) {
        std::uint64_t brem = bz;
        for (std::size_t q = 0; q < faulty.size(); ++q) {
          full[static_cast<std::size_t>(faulty[q])] = brem % S;
          brem /= S;
        }
        for (int p = 0; p < P; ++p) {
          const int v = correct[static_cast<std::size_t>(p)];
          const std::uint64_t vec = vec_index_for(v, full);
          if (deterministic) {
            for (std::uint64_t s = 0; s < S; ++s) can_var(e, p, s) = g_var(v, vec, s);
          } else {
            for (std::uint64_t s = 0; s < S; ++s) {
              cnf_.add({can_var(e, p, s), -g_var(v, vec, s)});
            }
          }
        }
      }

      // Agreement inside G (chain over adjacent correct nodes).
      for (int p = 0; p + 1 < P; ++p) {
        for (std::uint64_t o = 0; o < c; ++o) {
          cnf_.add({-Gv[e],
                    -h_var(correct[static_cast<std::size_t>(p)], cfg[static_cast<std::size_t>(p)], o),
                    h_var(correct[static_cast<std::size_t>(p + 1)],
                          cfg[static_cast<std::size_t>(p + 1)], o)});
        }
      }
    }

    // Pair constraints.
    std::vector<std::uint64_t> dcfg(static_cast<std::size_t>(P));
    for (std::uint64_t e = 0; e < configs; ++e) {
      std::uint64_t erem = e;
      for (int p = 0; p < P; ++p) {
        cfg[static_cast<std::size_t>(p)] = erem % S;
        erem /= S;
      }
      for (std::uint64_t d = 0; d < configs; ++d) {
        std::uint64_t drem = d;
        for (int p = 0; p < P; ++p) {
          dcfg[static_cast<std::size_t>(p)] = drem % S;
          drem /= S;
        }
        std::vector<sat::ExtLit> prefix;
        prefix.reserve(static_cast<std::size_t>(P) + 5);
        for (int p = 0; p < P; ++p) {
          prefix.push_back(-can_var(e, p, dcfg[static_cast<std::size_t>(p)]));
        }

        // Closure: G_e ∧ reach(e,d) -> G_d.
        {
          auto cl = prefix;
          cl.push_back(-Gv[e]);
          cl.push_back(Gv[d]);
          cnf_.add(cl);
        }
        // Increment: G_e ∧ reach(e,d) -> out(d) = out(e) + 1 (mod c).
        for (std::uint64_t o = 0; o < c; ++o) {
          auto cl = prefix;
          cl.push_back(-Gv[e]);
          cl.push_back(-h_var(correct[0], cfg[0], o));
          cl.push_back(h_var(correct[0], dcfg[0], (o + 1) % c));
          cnf_.add(cl);
        }
        // Convergence: ¬G_e ∧ reach(e,d) ∧ ¬G_d -> rank(d) < rank(e) <= R.
        for (int j = 0; j <= R; ++j) {
          auto cl = prefix;
          cl.push_back(Gv[e]);
          cl.push_back(Gv[d]);
          if (j > 0) cl.push_back(-u(d, j));
          if (j < R) cl.push_back(u(e, j + 1));
          cnf_.add(cl);
        }
      }
    }
  }
}

counting::TransitionTable Encoder::decode(const sat::Solver& solver) const {
  counting::TransitionTable t;
  t.n = spec_.n;
  t.f = spec_.f;
  t.num_states = spec_.num_states;
  t.modulus = spec_.modulus;
  t.symmetry = spec_.symmetry;
  t.label = "synthesized";
  const int node_dim = spec_.symmetry == Symmetry::kPerNode ? spec_.n : 1;
  t.g.resize(t.expected_g_size(), 0);
  t.h.resize(t.expected_h_size(), 0);
  for (int nd = 0; nd < node_dim; ++nd) {
    for (std::uint64_t vec = 0; vec < vecs_per_node_; ++vec) {
      bool found = false;
      for (std::uint64_t s = 0; s < spec_.num_states; ++s) {
        if (solver.value(g_var(nd, vec, s))) {
          t.g[static_cast<std::size_t>(nd) * vecs_per_node_ + vec] = static_cast<std::uint8_t>(s);
          found = true;
          break;
        }
      }
      SC_REQUIRE(found, "model missing a g assignment");
    }
    for (std::uint64_t x = 0; x < spec_.num_states; ++x) {
      bool found = false;
      for (std::uint64_t o = 0; o < spec_.modulus; ++o) {
        if (solver.value(h_var(nd, x, o))) {
          t.h[static_cast<std::size_t>(nd) * spec_.num_states + x] = static_cast<std::uint8_t>(o);
          found = true;
          break;
        }
      }
      SC_REQUIRE(found, "model missing an h assignment");
    }
  }
  return t;
}

sat::Var Encoder::rank_exceeds_var(int bound) const {
  SC_CHECK(bound >= 1 && bound <= static_cast<int>(rank_exceeds_.size()),
           "rank bound out of range");
  return rank_exceeds_[static_cast<std::size_t>(bound - 1)];
}

Encoder::SizeInfo Encoder::size() const {
  return SizeInfo{static_cast<std::size_t>(next_var_ - 1), cnf_.clauses.size()};
}

}  // namespace synccount::synthesis
