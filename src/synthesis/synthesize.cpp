#include "synthesis/synthesize.hpp"

#include <mutex>
#include <sstream>

#include "synthesis/known_tables.hpp"
#include "util/check.hpp"

namespace synccount::synthesis {

namespace {

const char* result_name(sat::Result r) {
  switch (r) {
    case sat::Result::kSat: return "sat";
    case sat::Result::kUnsat: return "unsat";
    case sat::Result::kUnsatAssumptions: return "unsat-assumptions";
    case sat::Result::kUnknown: return "unknown";
    case sat::Result::kCancelled: return "cancelled";
  }
  return "?";
}

// Stat deltas between two snapshots of the same solver (incremental sweeps
// accumulate; attempts report what each R actually cost).
AttemptStats attempt_delta(int time_bound, sat::Result res,
                           const sat::Solver::Stats& before,
                           const sat::Solver::Stats& after) {
  AttemptStats a;
  a.time_bound = time_bound;
  a.result = result_name(res);
  a.conflicts = after.conflicts - before.conflicts;
  a.decisions = after.decisions - before.decisions;
  a.propagations = after.propagations - before.propagations;
  a.restarts = after.restarts - before.restarts;
  return a;
}

}  // namespace

std::string SynthesisOutcome::stats_string() const {
  std::ostringstream os;
  for (const AttemptStats& a : attempts) {
    os << "R=" << a.time_bound << " result=" << a.result
       << " conflicts=" << a.conflicts << " decisions=" << a.decisions
       << " propagations=" << a.propagations << " restarts=" << a.restarts << "\n";
  }
  os << "attempts=" << attempts.size() << " total_conflicts=" << total_conflicts
     << " found=" << (found ? 1 : 0);
  if (found) os << " R=" << time_bound_used << " exact_time=" << exact_time;
  return os.str();
}

SynthesisOutcome synthesize(SynthesisSpec spec, const SynthesisOptions& options) {
  SC_CHECK(options.min_time >= 1 && options.min_time <= options.max_time,
           "bad time sweep");
  SynthesisOutcome out;
  for (int R = options.min_time; R <= options.max_time; ++R) {
    spec.max_time = R;
    Encoder enc(spec);
    sat::Solver solver;
    enc.cnf().load_into(solver);
    const sat::Result res = solver.solve(options.conflict_budget);
    out.attempts.push_back(attempt_delta(R, res, sat::Solver::Stats{}, solver.stats()));
    out.total_conflicts += solver.stats().conflicts;
    out.last_size = enc.size();
    if (res == sat::Result::kUnknown) {
      out.budget_exhausted = true;
      out.note = "conflict budget exhausted at R=" + std::to_string(R);
      continue;
    }
    if (res == sat::Result::kUnsat) continue;

    counting::TransitionTable table = enc.decode(solver);
    const counting::TableAlgorithm candidate(table);
    const VerifyResult vr = verify(candidate);
    SC_REQUIRE(vr.ok, "SAT model failed exact verification: " + vr.failure);
    SC_REQUIRE(vr.worst_case_time <= static_cast<std::uint64_t>(R),
               "verifier found a longer stabilisation than the encoding allows");
    table.verified_time = vr.worst_case_time;
    out.found = true;
    out.table = std::move(table);
    out.time_bound_used = R;
    out.exact_time = vr.worst_case_time;
    return out;
  }
  return out;
}

SynthesisOutcome synthesize_incremental(SynthesisSpec spec, const SynthesisOptions& options) {
  SC_CHECK(options.min_time >= 1 && options.min_time <= options.max_time,
           "bad time sweep");
  SynthesisOutcome out;
  spec.max_time = options.max_time;
  Encoder enc(spec);
  out.last_size = enc.size();
  sat::Solver solver;
  enc.cnf().load_into(solver);

  for (int R = options.min_time; R <= options.max_time; ++R) {
    std::vector<sat::ExtLit> assumptions;
    if (R < options.max_time) assumptions.push_back(-enc.rank_exceeds_var(R));
    const sat::Solver::Stats before = solver.stats();
    const sat::Result res =
        solver.solve_assuming(assumptions, options.conflict_budget == 0
                                               ? 0
                                               : before.conflicts + options.conflict_budget);
    out.attempts.push_back(attempt_delta(R, res, before, solver.stats()));
    out.total_conflicts = solver.stats().conflicts;
    if (res == sat::Result::kUnknown) {
      out.budget_exhausted = true;
      out.note = "conflict budget exhausted at R=" + std::to_string(R);
      continue;
    }
    if (res == sat::Result::kUnsat) {
      // Globally unsatisfiable: no algorithm even at max_time; stop early.
      return out;
    }
    if (res == sat::Result::kUnsatAssumptions) continue;

    counting::TransitionTable table = enc.decode(solver);
    const counting::TableAlgorithm candidate(table);
    const VerifyResult vr = verify(candidate);
    SC_REQUIRE(vr.ok, "SAT model failed exact verification: " + vr.failure);
    SC_REQUIRE(vr.worst_case_time <= static_cast<std::uint64_t>(R),
               "verifier found a longer stabilisation than the encoding allows");
    table.verified_time = vr.worst_case_time;
    out.found = true;
    out.table = std::move(table);
    out.time_bound_used = R;
    out.exact_time = vr.worst_case_time;
    return out;
  }
  return out;
}

counting::AlgorithmPtr computer_designed_4_1() {
  static std::mutex mu;
  // synccount-lint: allow(global-state) -- write-once memo of the embedded
  // table's re-verification, guarded by the mutex above; the cached value is
  // a function of compiled-in data only, so every process computes the same.
  static counting::AlgorithmPtr cached;
  std::lock_guard<std::mutex> lock(mu);
  if (cached) return cached;
  // The embedded table was produced by this same pipeline; re-certify it
  // here so a corrupted table can never be served.
  auto algo = std::make_shared<counting::TableAlgorithm>(known_table_4_1_3states());
  const VerifyResult vr = verify(*algo);
  SC_REQUIRE(vr.ok, "embedded computer-designed table failed verification: " + vr.failure);
  SC_REQUIRE(vr.worst_case_time == algo->table().verified_time,
             "embedded table's certified time is stale");
  cached = std::move(algo);
  return cached;
}

}  // namespace synccount::synthesis
