// The parallel synthesis engine: portfolio CDCL + cube-and-conquer + an
// empirical 64-lane prefilter, with a hard determinism contract.
//
// Layering (synthesize_portfolio):
//   * The admissible-time sweep R = min_time..max_time stays sequential,
//     mirroring synthesize_incremental's semantics.
//   * Within one R the instance is split into 2^cube_depth cubes
//     (synthesis/cube.hpp); every (cube, config) pair of the K-config
//     portfolio races across a util::ThreadPool with first-winner-cancels
//     semantics: the first config to resolve a cube raises that cube's stop
//     flag (sat::Solver polls it and returns Result::kCancelled), and a SAT
//     cube cancels every higher-index cube outright (they can no longer win).
//   * The reported winner is timing-independent: the winning cube is the
//     LOWEST-index SAT cube (lower cubes always run to completion -- only
//     higher cubes are cancelled), and the winning model is re-derived by the
//     canonical priority scan solve_cube(), which tries configs in fixed
//     priority order with deterministic budgets. Cube verdicts themselves are
//     config-independent (SAT/UNSAT is a property of the formula; "unknown"
//     means every config exhausted its deterministic budget), so the whole
//     outcome -- verdict, winning cube, decoded table -- is bit-identical
//     across thread counts and across local-pool vs serve-worker execution.
//   * Decoded candidates pass a cheap empirical screen (sim::run_batch,
//     64-lane backend, random + split adversaries over a fixed seed list)
//     before the exponential game-tree verifier; an empirically falsified
//     candidate is refuted back into the search as a blocking clause
//     (counterexample-guided refinement). The encoding is exact, so this is
//     defence in depth -- the refinement loop exists to catch encoder bugs
//     at batch-screen cost instead of letting them reach users.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "synthesis/cube.hpp"
#include "synthesis/synthesize.hpp"

namespace synccount::synthesis {

// The deterministic config family, in priority order. Index 0 is the
// canonical default (MiniSat-style: false phases, no random branching);
// further entries diversify seed, phase policy, random-branch frequency,
// restart scaling and activity decay. portfolio_configs(k) is a prefix of
// portfolio_configs(k') for k <= k', so growing the portfolio never changes
// what the canonical scan returns, only how fast the race resolves.
std::vector<sat::SolverConfig> portfolio_configs(int k);

enum class CubeVerdict { kSat, kUnsat, kUnknown };
const char* to_string(CubeVerdict v) noexcept;
CubeVerdict cube_verdict_from_string(const std::string& s);

struct CubeResult {
  CubeVerdict verdict = CubeVerdict::kUnknown;
  int config_index = -1;               // resolving config (priority order)
  bool globally_unsat = false;         // solver proved UNSAT sans assumptions
  std::uint64_t conflicts = 0;         // summed over the configs tried
  std::uint64_t decisions = 0;
  std::uint64_t restarts = 0;
  counting::TransitionTable table;     // decoded model when verdict == kSat
};

// The canonical per-cube protocol shared by serve workers and the local
// engine's winner re-derivation: configs tried strictly in priority order,
// each on a fresh solver with the same deterministic conflict budget; the
// first resolved verdict wins and (for SAT) its model is decoded. The
// optional `cached` callback lets the local engine reuse race-phase results
// (a cached entry must equal what the re-run would produce -- guaranteed,
// because each (cube, config, budget) solve is deterministic).
CubeResult solve_cube(
    const Encoder& enc, const SynthJobSpec& job, std::uint64_t cube_index,
    const std::function<const CubeResult*(int config)>& cached = nullptr);

// Convenience for serve workers: encode + solve one leased cube.
CubeResult solve_cube(const SynthJobSpec& job, std::uint64_t cube_index);

struct ParallelOptions {
  SynthesisOptions base;        // time sweep + per-config conflict budget
  int portfolio = 4;            // K diversified configs
  int cube_depth = 3;           // 2^d cubes per R (0 = portfolio-only)
  int threads = 0;              // pool width; 0 = hardware concurrency
  bool prefilter = true;        // empirical screen before the exact verifier
  int prefilter_seeds = 128;    // lanes per (adversary, placement) screen
  int max_refinements = 8;      // CEGAR blocking-clause rounds per R
};

struct ParallelOutcomeInfo {
  std::uint64_t cubes_sat = 0;
  std::uint64_t cubes_unsat = 0;
  std::uint64_t cubes_unknown = 0;
  std::uint64_t cubes_cancelled = 0;   // moot cubes skipped or interrupted
  std::uint64_t prefilter_runs = 0;    // candidate tables screened
  std::uint64_t prefilter_rejections = 0;  // empirically falsified candidates
  std::uint64_t winning_cube = 0;      // valid when found
  int winning_config = -1;             // valid when found
};

// Empirical candidate screen: runs the table under the random and split
// adversaries (spread + prefix placements, `seeds` fixed lanes each) on the
// batched backend and checks every lane stabilises within the claimed bound.
// Deterministic: fixed seed list, bit-identical backend. Returns true when
// the candidate survives.
bool prefilter_candidate(const counting::TransitionTable& table,
                         std::uint64_t claimed_time, int seeds);

// A clause forbidding exactly this table's (g, h) assignment, for
// counterexample-guided refinement.
std::vector<sat::ExtLit> blocking_clause_for(const Encoder& enc,
                                             const counting::TransitionTable& table);

// The parallel driver. Same contract as synthesize_incremental (found /
// budget_exhausted / UNSAT-proof semantics, per-R attempts in
// outcome.attempts), plus `info` diagnostics when non-null. The returned
// table is bit-identical for fixed (spec, options ex. threads) across any
// thread count, and matches what serve workers produce for the same
// SynthJobSpec -- see the determinism notes above.
SynthesisOutcome synthesize_portfolio(SynthesisSpec spec,
                                      const ParallelOptions& options,
                                      ParallelOutcomeInfo* info = nullptr);

}  // namespace synccount::synthesis
