// An *optimal* Byzantine adversary for small table algorithms: it plays the
// solved stabilisation game from the exact verifier. Each round it looks up
// the current configuration, enumerates the reachable successor
// configurations, steers the system towards the one with the maximal
// remaining distance-to-good-set, and crafts the per-receiver messages that
// realise that transition.
//
// This closes the loop between analysis and simulation: started from a
// worst-case configuration, the simulated stabilisation time matches the
// verifier-certified exact worst case (see synthesis_test).
#pragma once

#include <memory>

#include "sim/adversary.hpp"
#include "synthesis/verifier.hpp"

namespace synccount::synthesis {

class OptimalAdversary final : public sim::Adversary {
 public:
  // The algorithm must verify (throws std::invalid_argument otherwise).
  explicit OptimalAdversary(counting::AlgorithmPtr algo);

  void begin_round(std::uint64_t round, std::span<const sim::State> true_states,
                   const counting::CountingAlgorithm& algo,
                   std::span<const counting::NodeId> faulty_ids, util::Rng& rng) override;

  sim::State message(std::uint64_t round, counting::NodeId sender, counting::NodeId receiver,
                     std::span<const sim::State> true_states,
                     const counting::CountingAlgorithm& algo, util::Rng& rng) override;

  std::string name() const override { return "optimal"; }

  // For a given initial configuration (states of the correct nodes in
  // ascending node order) and faulty set, the certified number of rounds
  // this adversary can keep the system from counting.
  std::uint64_t certified_distance(std::span<const counting::NodeId> faulty_ids,
                                   std::span<const sim::State> all_states) const;

 private:
  const FaultSetGame* find_game(std::span<const counting::NodeId> faulty_ids) const;
  std::uint64_t config_of(const FaultSetGame& game,
                          std::span<const sim::State> states) const;

  counting::AlgorithmPtr algo_;
  GameAnalysis analysis_;
  // Per-round plan: byz assignment (base-|X| digits over the faulty set)
  // for each correct receiver, indexed by absolute node id.
  std::vector<std::uint32_t> plan_;
  const FaultSetGame* current_game_ = nullptr;
};

}  // namespace synccount::synthesis
