// Computer-designed building blocks discovered by this repository's own
// synthesis pipeline (encoder + CDCL solver) and certified by the exact
// verifier. They are embedded as source because re-synthesising takes
// CPU-minutes; the test suite re-verifies them from scratch (milliseconds),
// so correctness never rests on the embedded data being untampered.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "counting/table_algorithm.hpp"

namespace synccount::synthesis {

// n = 4, f = 1, c = 2, |X| = 3, cyclic; exact worst-case stabilisation time
// 6 rounds. Reproduces the "n >= 4, f = 1 with only 3 states per node"
// computer-designed algorithm of [5] (paper, Section 1).
counting::TransitionTable known_table_4_1_3states();

// n = 4, f = 1, c = 2, |X| = 4 (2 state bits), uniform; exact worst-case
// stabilisation time 8 rounds: the "2 state bits" row of Table 1. With 3
// states the uniform instance is UNSAT for every admissible time bound
// <= 16 -- see bench_synthesis.
counting::TransitionTable known_table_4_1_4states();

// Registry keyed by the short names the CLI and the serializable
// AlgorithmSpec (counting/algorithm_spec.hpp) use, so a worker process can
// reconstruct an embedded table from its name alone. Unknown names return
// nullopt.
std::vector<std::string> known_table_names();
std::optional<counting::TransitionTable> known_table_by_name(const std::string& name);

// The registry name of `table` if its parameters and g/h entries match an
// embedded table exactly (describe() prefers a name over an inline dump).
std::optional<std::string> known_table_name_of(const counting::TransitionTable& table);

}  // namespace synccount::synthesis
