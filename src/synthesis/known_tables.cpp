#include "synthesis/known_tables.hpp"

namespace synccount::synthesis {

counting::TransitionTable known_table_4_1_3states() {
  counting::TransitionTable t;
  t.n = 4;
  t.f = 1;
  t.num_states = 3;
  t.modulus = 2;
  t.symmetry = counting::Symmetry::kCyclic;
  t.label = "computer-designed";
  // Discovered by Encoder/Solver (cyclic symmetry class, max_time = 6) and
  // certified by verify(): exact worst-case stabilisation time 6 over all
  // faulty sets |F| <= 1. Reproduces the "n >= 4, f = 1, 3 states per node"
  // computer-designed algorithm of [5]. Index layout: g[x0 + 3*x1 + 9*x2 +
  // 27*x3] where x0 is the node's *own* state and x1..x3 follow cyclically.
  t.g = {
      2, 2, 2, 2, 2, 2, 2, 2, 0, 2, 2, 2, 2, 2, 1, 2, 2, 0, 2, 2, 2, 2, 2, 2, 1, 2, 0,
      2, 2, 0, 2, 2, 2, 2, 2, 0, 2, 2, 2, 2, 2, 0, 2, 2, 0, 2, 0, 0, 2, 0, 0, 0, 0, 0,
      2, 2, 0, 2, 2, 0, 2, 2, 0, 2, 2, 0, 2, 2, 0, 2, 2, 0, 0, 2, 0, 0, 2, 0, 1, 2, 0,
  };
  t.h = {0, 0, 1};
  t.verified_time = 6;
  return t;
}

counting::TransitionTable known_table_4_1_4states() {
  counting::TransitionTable t;
  t.n = 4;
  t.f = 1;
  t.num_states = 4;
  t.modulus = 2;
  t.symmetry = counting::Symmetry::kUniform;
  t.label = "computer-designed";
  // Discovered by Encoder/Solver (uniform symmetry class, max_time = 8) and
  // certified by verify(): exact worst-case stabilisation time 8 over all
  // faulty sets |F| <= 1. With 3 states the *uniform* instance is UNSAT for
  // every time bound <= 16 (see bench_synthesis), which is why the cyclic
  // class above is the interesting one.
  // Index layout: g[x0 + 4*x1 + 16*x2 + 64*x3] (sender-indexed vector).
  t.g = {
      3, 2, 3, 2, 3, 3, 3, 2, 3, 3, 1, 1, 3, 3, 1, 1, 3, 3, 3, 2, 2, 3, 3, 3, 3, 3, 3, 0, 2, 2, 2, 0,
      3, 3, 1, 3, 3, 3, 0, 3, 1, 3, 1, 1, 3, 2, 1, 1, 3, 2, 3, 2, 2, 2, 3, 2, 3, 2, 1, 1, 3, 1, 1, 1,
      2, 2, 3, 2, 2, 2, 3, 2, 2, 2, 0, 2, 3, 2, 2, 1, 2, 2, 3, 2, 3, 2, 3, 2, 2, 3, 3, 2, 3, 2, 2, 2,
      3, 3, 1, 1, 3, 3, 0, 3, 0, 3, 0, 0, 1, 2, 1, 1, 2, 2, 3, 2, 2, 2, 3, 2, 2, 2, 0, 1, 1, 1, 0, 1,
      3, 2, 3, 2, 3, 3, 3, 2, 3, 3, 1, 1, 1, 2, 1, 1, 2, 2, 1, 2, 3, 3, 0, 3, 3, 3, 0, 0, 2, 2, 0, 0,
      3, 1, 1, 1, 3, 0, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 2, 2, 1, 0, 2, 0, 0, 0, 1, 0, 0, 1, 1, 0, 0, 0,
      2, 2, 2, 0, 2, 3, 2, 0, 2, 2, 1, 1, 1, 3, 1, 1, 2, 3, 2, 0, 2, 3, 3, 3, 2, 0, 0, 0, 1, 0, 0, 0,
      2, 2, 1, 1, 2, 0, 0, 0, 1, 0, 0, 1, 1, 0, 0, 0, 2, 0, 0, 0, 1, 0, 0, 0, 1, 0, 1, 0, 1, 0, 1, 0,
  };
  t.h = {0, 0, 1, 1};
  t.verified_time = 8;
  return t;
}

}  // namespace synccount::synthesis
