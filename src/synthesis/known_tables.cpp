#include "synthesis/known_tables.hpp"

#include <array>

namespace synccount::synthesis {

namespace {

struct RegistryEntry {
  const char* name;
  counting::TransitionTable (*make)();
};

// Names match the `synccount_cli sweep --table=` spellings.
constexpr std::array<RegistryEntry, 2> kRegistry = {{
    {"3states", &known_table_4_1_3states},
    {"4states", &known_table_4_1_4states},
}};

}  // namespace

counting::TransitionTable known_table_4_1_3states() {
  counting::TransitionTable t;
  t.n = 4;
  t.f = 1;
  t.num_states = 3;
  t.modulus = 2;
  t.symmetry = counting::Symmetry::kCyclic;
  t.label = "computer-designed";
  // Discovered by Encoder/Solver (cyclic symmetry class, max_time = 6) and
  // certified by verify(): exact worst-case stabilisation time 6 over all
  // faulty sets |F| <= 1. Reproduces the "n >= 4, f = 1, 3 states per node"
  // computer-designed algorithm of [5]. Index layout: g[x0 + 3*x1 + 9*x2 +
  // 27*x3] where x0 is the node's *own* state and x1..x3 follow cyclically.
  t.g = {
      2, 2, 2, 2, 2, 2, 2, 2, 0, 2, 2, 2, 2, 2, 1, 2, 2, 0, 2, 2, 2, 2, 2, 2, 1, 2, 0,
      2, 2, 0, 2, 2, 2, 2, 2, 0, 2, 2, 2, 2, 2, 0, 2, 2, 0, 2, 0, 0, 2, 0, 0, 0, 0, 0,
      2, 2, 0, 2, 2, 0, 2, 2, 0, 2, 2, 0, 2, 2, 0, 2, 2, 0, 0, 2, 0, 0, 2, 0, 1, 2, 0,
  };
  t.h = {0, 0, 1};
  t.verified_time = 6;
  return t;
}

counting::TransitionTable known_table_4_1_4states() {
  counting::TransitionTable t;
  t.n = 4;
  t.f = 1;
  t.num_states = 4;
  t.modulus = 2;
  t.symmetry = counting::Symmetry::kUniform;
  t.label = "computer-designed";
  // Discovered by Encoder/Solver (uniform symmetry class, max_time = 8) and
  // certified by verify(): exact worst-case stabilisation time 8 over all
  // faulty sets |F| <= 1. With 3 states the *uniform* instance is UNSAT for
  // every time bound <= 16 (see bench_synthesis), which is why the cyclic
  // class above is the interesting one.
  // Index layout: g[x0 + 4*x1 + 16*x2 + 64*x3] (sender-indexed vector).
  t.g = {
      3, 2, 3, 2, 3, 3, 3, 2, 3, 3, 1, 1, 3, 3, 1, 1, 3, 3, 3, 2, 2, 3, 3, 3, 3, 3, 3, 0, 2, 2, 2, 0,
      3, 3, 1, 3, 3, 3, 0, 3, 1, 3, 1, 1, 3, 2, 1, 1, 3, 2, 3, 2, 2, 2, 3, 2, 3, 2, 1, 1, 3, 1, 1, 1,
      2, 2, 3, 2, 2, 2, 3, 2, 2, 2, 0, 2, 3, 2, 2, 1, 2, 2, 3, 2, 3, 2, 3, 2, 2, 3, 3, 2, 3, 2, 2, 2,
      3, 3, 1, 1, 3, 3, 0, 3, 0, 3, 0, 0, 1, 2, 1, 1, 2, 2, 3, 2, 2, 2, 3, 2, 2, 2, 0, 1, 1, 1, 0, 1,
      3, 2, 3, 2, 3, 3, 3, 2, 3, 3, 1, 1, 1, 2, 1, 1, 2, 2, 1, 2, 3, 3, 0, 3, 3, 3, 0, 0, 2, 2, 0, 0,
      3, 1, 1, 1, 3, 0, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 2, 2, 1, 0, 2, 0, 0, 0, 1, 0, 0, 1, 1, 0, 0, 0,
      2, 2, 2, 0, 2, 3, 2, 0, 2, 2, 1, 1, 1, 3, 1, 1, 2, 3, 2, 0, 2, 3, 3, 3, 2, 0, 0, 0, 1, 0, 0, 0,
      2, 2, 1, 1, 2, 0, 0, 0, 1, 0, 0, 1, 1, 0, 0, 0, 2, 0, 0, 0, 1, 0, 0, 0, 1, 0, 1, 0, 1, 0, 1, 0,
  };
  t.h = {0, 0, 1, 1};
  t.verified_time = 8;
  return t;
}

std::vector<std::string> known_table_names() {
  std::vector<std::string> names;
  names.reserve(kRegistry.size());
  for (const auto& e : kRegistry) names.emplace_back(e.name);
  return names;
}

std::optional<counting::TransitionTable> known_table_by_name(const std::string& name) {
  for (const auto& e : kRegistry) {
    if (name == e.name) return e.make();
  }
  return std::nullopt;
}

std::optional<std::string> known_table_name_of(const counting::TransitionTable& table) {
  for (const auto& e : kRegistry) {
    const counting::TransitionTable known = e.make();
    // Every field must match, including verified_time (it feeds
    // stabilisation_bound() and hence the engine's default horizon) and the
    // label (it feeds name()); a table that differs in either must travel
    // inline or the describe/build round-trip would change behaviour.
    if (known.n == table.n && known.f == table.f && known.num_states == table.num_states &&
        known.modulus == table.modulus && known.symmetry == table.symmetry &&
        known.verified_time == table.verified_time && known.label == table.label &&
        known.g == table.g && known.h == table.h) {
      return std::string(e.name);
    }
  }
  return std::nullopt;
}

}  // namespace synccount::synthesis
