#include "synthesis/portfolio.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "sim/adversaries.hpp"
#include "sim/batch_runner.hpp"
#include "sim/faults.hpp"
#include "util/check.hpp"
#include "util/math.hpp"
#include "util/thread_pool.hpp"

namespace synccount::synthesis {

std::vector<sat::SolverConfig> portfolio_configs(int k) {
  SC_CHECK(k >= 1 && k <= 64, "portfolio size must be in [1, 64]");
  using Phase = sat::SolverConfig::Phase;
  std::vector<sat::SolverConfig> out;
  out.reserve(static_cast<std::size_t>(k));
  out.emplace_back();  // index 0: the canonical default config
  static constexpr Phase kPhases[] = {Phase::kTrue, Phase::kRandom, Phase::kFalse};
  static constexpr double kFreqs[] = {0.02, 0.05, 0.10, 0.0};
  static constexpr std::uint64_t kScales[] = {64, 150, 100, 256, 32};
  static constexpr double kDecays[] = {0.95, 0.90, 0.99};
  for (int i = 1; i < k; ++i) {
    sat::SolverConfig c;
    c.seed = static_cast<std::uint64_t>(i) * 0x9E3779B97F4A7C15ULL + 1;
    c.initial_phase = kPhases[(i - 1) % 3];
    c.random_branch_freq = kFreqs[(i - 1) % 4];
    c.restart_scale = kScales[(i - 1) % 5];
    c.decay = kDecays[(i - 1) % 3];
    out.push_back(c);
  }
  return out;
}

const char* to_string(CubeVerdict v) noexcept {
  switch (v) {
    case CubeVerdict::kSat: return "sat";
    case CubeVerdict::kUnsat: return "unsat";
    case CubeVerdict::kUnknown: return "unknown";
  }
  return "?";
}

CubeVerdict cube_verdict_from_string(const std::string& s) {
  if (s == "sat") return CubeVerdict::kSat;
  if (s == "unsat") return CubeVerdict::kUnsat;
  if (s == "unknown") return CubeVerdict::kUnknown;
  throw std::invalid_argument("unknown cube verdict \"" + s + "\"");
}

namespace {

// Assumptions for one cube: its branch literals plus the rank selector that
// asserts "worst-case stabilisation <= R" (absent when R == max_time).
std::vector<sat::ExtLit> cube_assumptions(const Encoder& enc, const SynthJobSpec& job,
                                          std::uint64_t cube_index) {
  Cube cube = make_cube(enc, job.cube_depth, cube_index);
  std::vector<sat::ExtLit> assumptions = std::move(cube.assumptions);
  if (job.time_bound < job.spec.max_time) {
    assumptions.push_back(-enc.rank_exceeds_var(job.time_bound));
  }
  return assumptions;
}

CubeResult solve_cube_impl(const Encoder& enc, const SynthJobSpec& job,
                           std::uint64_t cube_index,
                           const std::vector<std::vector<sat::ExtLit>>& blocks,
                           const std::function<const CubeResult*(int)>& cached) {
  job.validate();
  const std::vector<sat::ExtLit> assumptions = cube_assumptions(enc, job, cube_index);
  const std::vector<sat::SolverConfig> configs = portfolio_configs(job.portfolio);
  CubeResult out;
  for (int c = 0; c < job.portfolio; ++c) {
    if (cached != nullptr) {
      if (const CubeResult* hit = cached(c)) {
        out.conflicts += hit->conflicts;
        out.decisions += hit->decisions;
        out.restarts += hit->restarts;
        if (hit->verdict != CubeVerdict::kUnknown) {
          out.verdict = hit->verdict;
          out.config_index = c;
          out.globally_unsat = hit->globally_unsat;
          out.table = hit->table;
          return out;
        }
        continue;  // this config deterministically exhausts its budget
      }
    }
    sat::Solver solver(configs[static_cast<std::size_t>(c)]);
    enc.cnf().load_into(solver);
    for (const auto& b : blocks) solver.add_clause(b);
    const sat::Result res = solver.solve_assuming(assumptions, job.conflict_budget);
    out.conflicts += solver.stats().conflicts;
    out.decisions += solver.stats().decisions;
    out.restarts += solver.stats().restarts;
    switch (res) {
      case sat::Result::kSat:
        out.verdict = CubeVerdict::kSat;
        out.config_index = c;
        out.table = enc.decode(solver);
        return out;
      case sat::Result::kUnsatAssumptions:
        out.verdict = CubeVerdict::kUnsat;
        out.config_index = c;
        return out;
      case sat::Result::kUnsat:
        out.verdict = CubeVerdict::kUnsat;
        out.config_index = c;
        out.globally_unsat = true;
        return out;
      case sat::Result::kUnknown:
        break;  // next config in priority order
      case sat::Result::kCancelled:
        SC_REQUIRE(false, "canonical scan runs without a stop flag");
    }
  }
  out.verdict = CubeVerdict::kUnknown;
  return out;
}

}  // namespace

CubeResult solve_cube(const Encoder& enc, const SynthJobSpec& job,
                      std::uint64_t cube_index,
                      const std::function<const CubeResult*(int)>& cached) {
  return solve_cube_impl(enc, job, cube_index, {}, cached);
}

CubeResult solve_cube(const SynthJobSpec& job, std::uint64_t cube_index) {
  job.validate();
  Encoder enc(job.spec);
  return solve_cube_impl(enc, job, cube_index, {}, nullptr);
}

bool prefilter_candidate(const counting::TransitionTable& table,
                         std::uint64_t claimed_time, int seeds) {
  SC_CHECK(seeds >= 1, "prefilter needs at least one seed");
  const auto algo = std::make_shared<counting::TableAlgorithm>(table);
  std::vector<std::uint64_t> seed_list(static_cast<std::size_t>(seeds));
  for (int i = 0; i < seeds; ++i) seed_list[static_cast<std::size_t>(i)] =
      0x5EEDBA5Eu + static_cast<std::uint64_t>(i);
  const std::vector<std::vector<bool>> placements = {
      sim::faults_spread(table.n, table.f), sim::faults_prefix(table.n, table.f)};
  for (const char* adversary : {"random", "split"}) {
    for (const std::vector<bool>& faulty : placements) {
      sim::BatchConfig bc;
      bc.algo = algo;
      bc.faulty = faulty;
      bc.max_rounds = claimed_time + 24;
      bc.margin = 8;
      bc.adversary = [adversary] { return sim::make_adversary(adversary); };
      bc.seeds = seed_list;
      for (const sim::RunResult& r : sim::run_batch(bc)) {
        if (!r.stabilised || r.stabilisation_round > claimed_time) return false;
      }
    }
  }
  return true;
}

std::vector<sat::ExtLit> blocking_clause_for(const Encoder& enc,
                                             const counting::TransitionTable& table) {
  const SynthesisSpec& spec = enc.spec();
  const int node_dim = spec.symmetry == counting::Symmetry::kPerNode ? spec.n : 1;
  const std::uint64_t vecs = util::ipow(spec.num_states, static_cast<unsigned>(spec.n));
  SC_CHECK(table.g.size() == static_cast<std::size_t>(node_dim) * vecs &&
               table.h.size() == static_cast<std::size_t>(node_dim) * spec.num_states,
           "table shape does not match the encoder's spec");
  std::vector<sat::ExtLit> clause;
  clause.reserve(table.g.size() + table.h.size());
  for (int nd = 0; nd < node_dim; ++nd) {
    for (std::uint64_t vec = 0; vec < vecs; ++vec) {
      const std::uint8_t target = table.g[static_cast<std::size_t>(nd) * vecs + vec];
      clause.push_back(-enc.g_var(nd, vec, target));
    }
    for (std::uint64_t s = 0; s < spec.num_states; ++s) {
      const std::uint8_t o = table.h[static_cast<std::size_t>(nd) * spec.num_states + s];
      clause.push_back(-enc.h_var(nd, s, o));
    }
  }
  return clause;
}

namespace {

// One (cube, config) slot of the race phase. Written by exactly one pool
// task; read only after wait_idle() (the pool's completion barrier provides
// the happens-before edge).
struct RaceSlot {
  enum class State : std::uint8_t { kSkipped, kDone, kCancelled };
  State state = State::kSkipped;
  sat::Result res = sat::Result::kUnknown;
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t restarts = 0;
  bool has_table = false;
  counting::TransitionTable table;
};

struct RaceOutcome {
  std::vector<std::vector<RaceSlot>> slots;  // [cube][config]
  std::optional<std::uint64_t> winner;       // lowest-index SAT cube
  bool globally_unsat = false;
  bool any_unknown = false;   // an un-moot cube where every config budgeted out
  std::uint64_t cubes_sat = 0;
  std::uint64_t cubes_unsat = 0;
  std::uint64_t cubes_unknown = 0;
  std::uint64_t cubes_cancelled = 0;
  AttemptStats attempt;
};

RaceOutcome run_race(const Encoder& enc, const SynthJobSpec& job,
                     const std::vector<std::vector<sat::ExtLit>>& blocks,
                     const std::vector<sat::SolverConfig>& configs,
                     util::ThreadPool& pool) {
  const std::uint64_t ncubes = std::uint64_t{1} << job.cube_depth;
  const int k = job.portfolio;
  RaceOutcome race;
  race.slots.assign(static_cast<std::size_t>(ncubes),
                    std::vector<RaceSlot>(static_cast<std::size_t>(k)));

  // Per-cube stop flags: raised when the cube resolves (cancels sibling
  // configs) or becomes moot (a lower cube went SAT). C++20 value-initialises
  // atomics; deque keeps addresses stable without requiring movability.
  std::deque<std::atomic<bool>> stops(static_cast<std::size_t>(ncubes));
  std::atomic<std::uint64_t> sat_floor{ncubes};
  std::atomic<bool> global_unsat{false};

  const auto raise_moot = [&](std::uint64_t from) {
    for (std::uint64_t i = from + 1; i < ncubes; ++i) {
      stops[static_cast<std::size_t>(i)].store(true, std::memory_order_relaxed);
    }
  };

  std::vector<std::vector<sat::ExtLit>> assumptions;
  assumptions.reserve(static_cast<std::size_t>(ncubes));
  for (std::uint64_t j = 0; j < ncubes; ++j) {
    assumptions.push_back(cube_assumptions(enc, job, j));
  }

  const auto task = [&](std::uint64_t cube, int cfg) {
    RaceSlot& slot = race.slots[static_cast<std::size_t>(cube)][static_cast<std::size_t>(cfg)];
    std::atomic<bool>& stop = stops[static_cast<std::size_t>(cube)];
    if (stop.load(std::memory_order_relaxed)) {
      slot.state = RaceSlot::State::kCancelled;
      return;
    }
    sat::Solver solver(configs[static_cast<std::size_t>(cfg)]);
    enc.cnf().load_into(solver);
    for (const auto& b : blocks) solver.add_clause(b);
    solver.set_stop_flag(&stop);
    const sat::Result res =
        solver.solve_assuming(assumptions[static_cast<std::size_t>(cube)],
                              job.conflict_budget);
    slot.res = res;
    slot.conflicts = solver.stats().conflicts;
    slot.decisions = solver.stats().decisions;
    slot.propagations = solver.stats().propagations;
    slot.restarts = solver.stats().restarts;
    if (res == sat::Result::kSat) {
      slot.table = enc.decode(solver);
      slot.has_table = true;
    }
    slot.state = res == sat::Result::kCancelled ? RaceSlot::State::kCancelled
                                                : RaceSlot::State::kDone;
    if (res == sat::Result::kSat || res == sat::Result::kUnsat ||
        res == sat::Result::kUnsatAssumptions) {
      // First winner cancels: sibling configs of this cube stop now.
      stop.store(true, std::memory_order_relaxed);
    }
    if (res == sat::Result::kSat) {
      // Higher-index cubes can no longer win; lower ones keep running so the
      // reported winner stays the timing-independent lowest SAT cube.
      std::uint64_t cur = sat_floor.load(std::memory_order_relaxed);
      while (cube < cur &&
             !sat_floor.compare_exchange_weak(cur, cube, std::memory_order_relaxed)) {
      }
      raise_moot(sat_floor.load(std::memory_order_relaxed));
    }
    if (res == sat::Result::kUnsat) {
      // UNSAT without assumptions: the whole instance (at max_time) is dead,
      // every cube of every remaining round included.
      global_unsat.store(true, std::memory_order_relaxed);
      for (auto& s : stops) s.store(true, std::memory_order_relaxed);
    }
  };

  // Submit cube-major in REVERSE so a single-threaded pool (LIFO own-queue
  // pops) still explores cube 0, config 0 first -- the canonical order that
  // minimises wasted work before cancellation kicks in.
  for (std::uint64_t j = ncubes; j-- > 0;) {
    for (int c = k; c-- > 0;) {
      pool.submit([&task, j, c] { task(j, c); });
    }
  }
  pool.wait_idle();

  race.globally_unsat = global_unsat.load();
  for (std::uint64_t j = 0; j < ncubes; ++j) {
    bool sat = false, unsat = false;
    int done = 0;
    for (int c = 0; c < k; ++c) {
      const RaceSlot& slot = race.slots[static_cast<std::size_t>(j)][static_cast<std::size_t>(c)];
      race.attempt.conflicts += slot.conflicts;
      race.attempt.decisions += slot.decisions;
      race.attempt.propagations += slot.propagations;
      race.attempt.restarts += slot.restarts;
      if (slot.state != RaceSlot::State::kDone) continue;
      ++done;
      if (slot.res == sat::Result::kSat) sat = true;
      if (slot.res == sat::Result::kUnsat || slot.res == sat::Result::kUnsatAssumptions) {
        unsat = true;
      }
    }
    if (sat) {
      ++race.cubes_sat;
      if (!race.winner.has_value() || j < *race.winner) race.winner = j;
    } else if (unsat) {
      ++race.cubes_unsat;
    } else if (done == k) {
      ++race.cubes_unknown;
    } else {
      ++race.cubes_cancelled;
    }
  }
  // "unknown" only matters below the winner: moot unknown cubes are just
  // cancelled work, not missing knowledge.
  const std::uint64_t horizon = race.winner.value_or(ncubes);
  for (std::uint64_t j = 0; j < horizon; ++j) {
    bool resolved = false;
    for (int c = 0; c < k; ++c) {
      const RaceSlot& slot = race.slots[static_cast<std::size_t>(j)][static_cast<std::size_t>(c)];
      if (slot.state == RaceSlot::State::kDone && slot.res != sat::Result::kUnknown) {
        resolved = true;
      }
    }
    if (!resolved) race.any_unknown = true;
  }

  race.attempt.time_bound = job.time_bound;
  race.attempt.result = race.winner.has_value() ? "sat"
                        : race.globally_unsat   ? "unsat"
                        : race.any_unknown      ? "unknown"
                                                : "unsat-assumptions";
  return race;
}

}  // namespace

SynthesisOutcome synthesize_portfolio(SynthesisSpec spec, const ParallelOptions& options,
                                      ParallelOutcomeInfo* info_out) {
  SC_CHECK(options.base.min_time >= 1 && options.base.min_time <= options.base.max_time,
           "bad time sweep");
  SC_CHECK(options.cube_depth >= 0 && options.cube_depth <= 20,
           "cube_depth must be in [0, 20]");
  SC_CHECK(options.max_refinements >= 0, "max_refinements must be non-negative");
  ParallelOutcomeInfo info;
  SynthesisOutcome out;
  spec.max_time = options.base.max_time;
  const Encoder enc(spec);
  out.last_size = enc.size();
  const std::vector<sat::SolverConfig> configs = portfolio_configs(options.portfolio);
  util::ThreadPool pool(options.threads);

  SynthJobSpec job;
  job.spec = spec;
  job.cube_depth = options.cube_depth;
  job.portfolio = options.portfolio;
  job.conflict_budget = options.base.conflict_budget;

  const auto publish_info = [&] {
    if (info_out != nullptr) *info_out = info;
  };

  for (int R = options.base.min_time; R <= options.base.max_time; ++R) {
    job.time_bound = R;
    std::vector<std::vector<sat::ExtLit>> blocks;  // CEGAR refutations
    for (int round = 0;; ++round) {
      RaceOutcome race = run_race(enc, job, blocks, configs, pool);
      out.attempts.push_back(race.attempt);
      out.total_conflicts += race.attempt.conflicts;
      info.cubes_sat += race.cubes_sat;
      info.cubes_unsat += race.cubes_unsat;
      info.cubes_unknown += race.cubes_unknown;
      info.cubes_cancelled += race.cubes_cancelled;

      if (!race.winner.has_value()) {
        SC_REQUIRE(blocks.empty(),
                   "refinement emptied a satisfiable instance: the empirical "
                   "prefilter refuted models of an exact encoding (encoder bug)");
        if (race.globally_unsat) {
          // No algorithm even at max_time: stop the sweep with an UNSAT
          // proof, exactly like synthesize_incremental.
          out.note = "unsat at max_time R=" + std::to_string(options.base.max_time);
          publish_info();
          return out;
        }
        if (race.any_unknown) {
          out.budget_exhausted = true;
          out.note = "conflict budget exhausted at R=" + std::to_string(R);
        }
        break;  // next R
      }

      const std::uint64_t W = *race.winner;
      const std::vector<RaceSlot>& row = race.slots[static_cast<std::size_t>(W)];
      const auto cache = [&row](int c) -> const CubeResult* {
        static thread_local CubeResult scratch;
        const RaceSlot& slot = row[static_cast<std::size_t>(c)];
        if (slot.state != RaceSlot::State::kDone) return nullptr;
        scratch = CubeResult{};
        scratch.conflicts = slot.conflicts;
        scratch.decisions = slot.decisions;
        scratch.restarts = slot.restarts;
        switch (slot.res) {
          case sat::Result::kSat:
            scratch.verdict = CubeVerdict::kSat;
            scratch.table = slot.table;
            break;
          case sat::Result::kUnsat:
            scratch.verdict = CubeVerdict::kUnsat;
            scratch.globally_unsat = true;
            break;
          case sat::Result::kUnsatAssumptions:
            scratch.verdict = CubeVerdict::kUnsat;
            break;
          default:
            scratch.verdict = CubeVerdict::kUnknown;
            break;
        }
        return &scratch;
      };
      const CubeResult winner = solve_cube_impl(enc, job, W, blocks, cache);
      SC_REQUIRE(winner.verdict == CubeVerdict::kSat,
                 "canonical scan lost a SAT verdict the race established");

      if (options.prefilter) {
        ++info.prefilter_runs;
        if (!prefilter_candidate(winner.table, static_cast<std::uint64_t>(R),
                                 options.prefilter_seeds)) {
          ++info.prefilter_rejections;
          SC_REQUIRE(round < options.max_refinements,
                     "empirical prefilter kept refuting candidates past the "
                     "refinement cap -- encoder/verifier disagreement");
          blocks.push_back(blocking_clause_for(enc, winner.table));
          continue;  // re-race this R with the refuted model excluded
        }
      }

      counting::TransitionTable table = winner.table;
      const counting::TableAlgorithm candidate(table);
      const VerifyResult vr = verify(candidate);
      SC_REQUIRE(vr.ok, "SAT model failed exact verification: " + vr.failure);
      SC_REQUIRE(vr.worst_case_time <= static_cast<std::uint64_t>(R),
                 "verifier found a longer stabilisation than the encoding allows");
      table.verified_time = vr.worst_case_time;
      out.found = true;
      out.table = std::move(table);
      out.time_bound_used = R;
      out.exact_time = vr.worst_case_time;
      info.winning_cube = W;
      info.winning_config = winner.config_index;
      publish_info();
      return out;
    }
  }
  publish_info();
  return out;
}

}  // namespace synccount::synthesis
