// Standalone synchronous execution of the phase-king instruction sets with a
// clean start: the classic consensus use of [1], used to test Lemmas 4 and 5
// in isolation from the counting construction, and by the Table 2 bench.
//
// Starting from instruction index `start_index`, the driver executes
// `num_rounds` consecutive instruction sets (wrapping modulo τ) at every
// correct node. Byzantine senders may equivocate arbitrarily through the
// callback. Because every instruction set ends in `increment`, agreement on
// a value x at round q means agreement on x + r - q (mod C) at rounds r > q
// (Lemma 5); the helpers below check exactly that.
#pragma once

#include <functional>
#include <vector>

#include "phaseking/phase_king.hpp"

namespace synccount::phaseking {

// a-value that faulty `sender` reports to `receiver` in round `r` (r counts
// from 0 within this run).
using ByzantineFn =
    std::function<std::uint64_t(int r, NodeId sender, NodeId receiver)>;

struct ConsensusTrace {
  // regs[r][v] = registers of node v at the *start* of round r
  // (regs.front() = initial, regs.back() = final after num_rounds rounds).
  std::vector<std::vector<Registers>> regs;
};

// Executes the instruction sets; faulty nodes' register entries in the trace
// are frozen at their initial values (their broadcasts come from `byz`).
// `mode` selects the counting adaptation (increment every round) or the
// classic value consensus of [1].
ConsensusTrace run_phase_king(const Params& p, std::vector<Registers> initial,
                              const std::vector<bool>& faulty, const ByzantineFn& byz,
                              int start_index, int num_rounds,
                              StepMode mode = StepMode::kCounting);

// True if all correct nodes agree on a non-∞ a-value (and d = 1) in the
// given register vector.
bool agreed(const Params& p, const std::vector<Registers>& regs,
            const std::vector<bool>& faulty);

}  // namespace synccount::phaseking
