#include "phaseking/consensus.hpp"

#include "util/check.hpp"

namespace synccount::phaseking {

ConsensusTrace run_phase_king(const Params& p, std::vector<Registers> initial,
                              const std::vector<bool>& faulty, const ByzantineFn& byz,
                              int start_index, int num_rounds, StepMode mode) {
  p.validate();
  SC_CHECK(static_cast<int>(initial.size()) == p.N, "initial register vector size mismatch");
  SC_CHECK(static_cast<int>(faulty.size()) == p.N, "fault vector size mismatch");
  SC_CHECK(start_index >= 0 && start_index < p.tau(), "instruction index out of range");
  SC_CHECK(num_rounds >= 0, "negative round count");

  ConsensusTrace trace;
  trace.regs.push_back(initial);

  std::vector<Registers> cur = std::move(initial);
  std::vector<Registers> nxt(cur.size());
  std::vector<std::uint64_t> received(cur.size());

  for (int r = 0; r < num_rounds; ++r) {
    const int index = (start_index + r) % p.tau();
    for (NodeId v = 0; v < p.N; ++v) {
      if (faulty[static_cast<std::size_t>(v)]) {
        nxt[static_cast<std::size_t>(v)] = cur[static_cast<std::size_t>(v)];
        continue;
      }
      for (NodeId u = 0; u < p.N; ++u) {
        received[static_cast<std::size_t>(u)] =
            faulty[static_cast<std::size_t>(u)]
                ? decode_a(encode_a(byz(r, u, v), p.C), p.C)  // clamp to the valid domain
                : cur[static_cast<std::size_t>(u)].a;
      }
      nxt[static_cast<std::size_t>(v)] =
          step(p, index, v, cur[static_cast<std::size_t>(v)], received, mode);
    }
    cur = nxt;
    trace.regs.push_back(cur);
  }
  return trace;
}

bool agreed(const Params& p, const std::vector<Registers>& regs,
            const std::vector<bool>& faulty) {
  std::uint64_t value = kInfinity;
  for (NodeId v = 0; v < p.N; ++v) {
    if (faulty[static_cast<std::size_t>(v)]) continue;
    const auto& r = regs[static_cast<std::size_t>(v)];
    if (r.a == kInfinity || !r.d) return false;
    if (value == kInfinity) {
      value = r.a;
    } else if (r.a != value) {
      return false;
    }
  }
  return value != kInfinity;
}

}  // namespace synccount::phaseking
