// The self-stabilising adaptation of the phase king protocol [1]
// (paper, Section 3.4 and Table 2).
//
// Registers per node v: a[v] in [C] ∪ {∞} (the counting output; ∞ is the
// reset state) and d[v] in {0,1}. For each king ℓ in [F+2] there are three
// instruction sets, executed when the voted round counter R equals 3ℓ,
// 3ℓ+1, 3ℓ+2 (τ = 3(F+2) instruction sets in total):
//
//   I_{3ℓ}:   1. if fewer than N−F nodes sent a[v], a[v] ← ∞
//             2. increment a[v]
//   I_{3ℓ+1}: 1. z_j = |{u : a[u] = j}|
//             2. d[v] ← (z_{a[v]} ≥ N−F)
//             3. a[v] ← min{ j : z_j > F }
//             4. increment a[v]
//   I_{3ℓ+2}: 1. if a[v] = ∞ or d[v] = 0, a[v] ← min{C, a[ℓ]}
//             2. d[v] ← 1; increment a[v]
//
// where `increment` is +1 mod C and a no-op on ∞. Edge semantics follow the
// paper literally (see DESIGN.md): min over an empty set is ∞, and
// min{C, ∞} = C, an out-of-range value whose increment (C+1) mod C is
// deterministic and identical at every correct node -- which is all that
// Lemma 4 requires.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "util/check.hpp"

namespace synccount::phaseking {

using NodeId = int;

// The reset value ∞.
inline constexpr std::uint64_t kInfinity = ~std::uint64_t{0};

struct Params {
  int N = 0;           // number of nodes
  int F = 0;           // resilience, F < N/3
  std::uint64_t C = 0; // counter size, C > 1

  // τ = 3(F+2): the number of instruction sets / length of the control
  // counter required by the protocol.
  int tau() const noexcept { return 3 * (F + 2); }

  void validate() const;
};

struct Registers {
  std::uint64_t a = 0;  // value in [C] or kInfinity (or transiently C, see above)
  bool d = false;

  friend bool operator==(const Registers&, const Registers&) = default;
};

// Whether `increment` advances a modulo C each round (the counting
// adaptation of Section 3.4) or is a no-op (classic value consensus [1]:
// agreement on a value in [C] instead of on a counter).
enum class StepMode { kCounting, kValue };

// Executes instruction set I_{index} (index in [0, τ)) for node v, given the
// a-registers received from all N nodes this round (entry u = a[u] as sent by
// node u; entry v must be the node's own round-start a). Returns the new
// registers. Pure function: no global state.
Registers step(const Params& p, int index, NodeId v, const Registers& own,
               std::span<const std::uint64_t> received_a,
               StepMode mode = StepMode::kCounting);

// Sampled variant for the pulling model (Section 5, Lemma 8): instead of all
// N values the node inspects M uniformly sampled a-registers (a multiset,
// sampled with repetition); the N−F threshold becomes "at least 2/3·M" and
// the F+1 threshold becomes "more than 1/3·M". The king's register is pulled
// directly (one extra message) and passed as `king_a`.
Registers step_sampled(const Params& p, int index, const Registers& own,
                       std::span<const std::uint64_t> sampled_a, std::uint64_t king_a);

// Encoding helpers: a-register <-> bit pattern of width a_bits(C).
// ∞ is encoded as the value C; arbitrary (Byzantine) bit patterns decode by
// clamping to [0, C], i.e. every pattern is a valid register value.
int a_bits(std::uint64_t C) noexcept;
std::uint64_t encode_a(std::uint64_t a, std::uint64_t C) noexcept;
std::uint64_t decode_a(std::uint64_t bits, std::uint64_t C) noexcept;

}  // namespace synccount::phaseking
