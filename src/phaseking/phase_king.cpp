#include "phaseking/phase_king.hpp"

#include <algorithm>
#include <vector>

#include "util/math.hpp"

namespace synccount::phaseking {

void Params::validate() const {
  SC_CHECK(N >= 1, "phase king needs at least one node");
  SC_CHECK(C >= 2, "phase king counter size must be at least 2");
  SC_CHECK(F >= 0, "resilience must be non-negative");
  SC_CHECK(N > 3 * F, "phase king requires N > 3F");
  SC_CHECK(N >= F + 2, "phase king requires at least F+2 nodes (kings)");
}

namespace {

// increment a[v]: +1 mod C; no action on ∞. Values equal to C (transient,
// from min{C, ∞}) wrap to (C+1) mod C deterministically.
inline std::uint64_t increment(std::uint64_t a, std::uint64_t C) noexcept {
  if (a == kInfinity) return a;
  return (a + 1) % C;
}

// Shared scratch for value counting: z[j] for j in [0, C] where index C
// stands for ∞. Only entries touched this call are zeroed afterwards, so a
// step costs O(N) regardless of C.
thread_local std::vector<std::uint32_t> t_zbuf;

inline std::size_t bucket_of(std::uint64_t a, std::uint64_t C) noexcept {
  return static_cast<std::size_t>(a == kInfinity ? C : std::min(a, C));
}

}  // namespace

Registers step(const Params& p, int index, NodeId v, const Registers& own,
               std::span<const std::uint64_t> received_a, StepMode mode) {
  SC_ASSERT(index >= 0 && index < p.tau());
  SC_ASSERT(static_cast<int>(received_a.size()) == p.N);
  SC_ASSERT(v >= 0 && v < p.N);
  (void)v;

  const int king = index / 3;
  const int phase = index % 3;
  const auto N = static_cast<std::uint64_t>(p.N);
  const auto F = static_cast<std::uint64_t>(p.F);
  Registers out = own;
  const auto advance = [&](std::uint64_t a) {
    return mode == StepMode::kCounting ? increment(a, p.C)
                                       : (a == kInfinity ? a : a % p.C);
  };

  switch (phase) {
    case 0: {  // I_{3ℓ}
      std::uint64_t same = 0;
      for (std::uint64_t a : received_a) {
        if (a == own.a) ++same;
      }
      if (same < N - F) out.a = kInfinity;
      out.a = advance(out.a);
      break;
    }
    case 1: {  // I_{3ℓ+1}
      if (t_zbuf.size() < p.C + 1) t_zbuf.resize(static_cast<std::size_t>(p.C) + 1, 0);
      for (std::uint64_t a : received_a) ++t_zbuf[bucket_of(a, p.C)];

      const std::uint64_t z_own = t_zbuf[bucket_of(own.a, p.C)];
      out.d = z_own >= N - F;

      // min{ j : z_j > F }: scan the received values themselves (a value can
      // only exceed F occurrences if it was received), preferring the
      // smallest real value; fall back to ∞.
      std::uint64_t best = kInfinity;
      for (std::uint64_t a : received_a) {
        if (a == kInfinity || a >= p.C) continue;  // ∞ sorts last
        if (t_zbuf[static_cast<std::size_t>(a)] > F && a < best) best = a;
      }
      out.a = best;

      for (std::uint64_t a : received_a) t_zbuf[bucket_of(a, p.C)] = 0;
      out.a = advance(out.a);
      break;
    }
    default: {  // I_{3ℓ+2}
      if (own.a == kInfinity || !own.d) {
        const std::uint64_t king_a = received_a[static_cast<std::size_t>(king)];
        out.a = std::min<std::uint64_t>(p.C, king_a);  // min{C, a[ℓ]}; ∞ -> C
      }
      out.d = true;
      out.a = advance(out.a);
      break;
    }
  }
  return out;
}

Registers step_sampled(const Params& p, int index, const Registers& own,
                       std::span<const std::uint64_t> sampled_a, std::uint64_t king_a) {
  SC_ASSERT(index >= 0 && index < p.tau());
  const auto M = static_cast<std::uint64_t>(sampled_a.size());
  SC_ASSERT(M > 0);
  const int phase = index % 3;
  Registers out = own;

  switch (phase) {
    case 0: {  // I_{3ℓ}, threshold N-F -> 2/3·M
      std::uint64_t same = 0;
      for (std::uint64_t a : sampled_a) {
        if (a == own.a) ++same;
      }
      if (3 * same < 2 * M) out.a = kInfinity;
      if (out.a != kInfinity) out.a = (out.a + 1) % p.C;
      break;
    }
    case 1: {  // I_{3ℓ+1}, thresholds N-F -> 2/3·M and F+1 -> >1/3·M
      if (t_zbuf.size() < p.C + 1) t_zbuf.resize(static_cast<std::size_t>(p.C) + 1, 0);
      for (std::uint64_t a : sampled_a) ++t_zbuf[bucket_of(a, p.C)];

      const std::uint64_t z_own = t_zbuf[bucket_of(own.a, p.C)];
      out.d = 3 * z_own >= 2 * M;

      std::uint64_t best = kInfinity;
      for (std::uint64_t a : sampled_a) {
        if (a == kInfinity || a >= p.C) continue;
        if (3 * t_zbuf[static_cast<std::size_t>(a)] > M && a < best) best = a;
      }
      out.a = best;

      for (std::uint64_t a : sampled_a) t_zbuf[bucket_of(a, p.C)] = 0;
      if (out.a != kInfinity) out.a = (out.a + 1) % p.C;
      break;
    }
    default: {  // I_{3ℓ+2}: the king is pulled directly, semantics unchanged
      if (own.a == kInfinity || !own.d) {
        out.a = std::min<std::uint64_t>(p.C, king_a);
      }
      out.d = true;
      out.a = out.a == kInfinity ? out.a : (out.a + 1) % p.C;
      break;
    }
  }
  return out;
}

int a_bits(std::uint64_t C) noexcept { return util::ceil_log2(C + 1); }

std::uint64_t encode_a(std::uint64_t a, std::uint64_t C) noexcept {
  return a == kInfinity ? C : std::min(a, C);
}

std::uint64_t decode_a(std::uint64_t bits, std::uint64_t C) noexcept {
  return bits >= C ? kInfinity : bits;
}

}  // namespace synccount::phaseking
