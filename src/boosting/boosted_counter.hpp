// Theorem 1: resilience boosting for synchronous counters.
//
// Given an inner counter A ∈ A(n, f, c) with c ≡ 0 (mod 3(F+2)(2m)^k), the
// boosted counter B ∈ A(N, F, C) runs on N = k·n nodes arranged in k blocks
// of n. Every node (i, j):
//
//   1. runs A inside its own block i (a copy A_i whose output is read
//      modulo c_i = τ(2m)^{i+1}, τ = 3(F+2), and interpreted as a pair
//      (r, y) with r ∈ [τ], y ∈ [(2m)^{i+1}]);
//   2. derives the leader-block pointer b[i,j] = ⌊y/(2m)^i⌋ mod m. Block i
//      cycles through candidate leaders (2m)× slower than block i−1, so all
//      stabilised blocks eventually point at the same leader for τ rounds
//      (Lemmas 1–2);
//   3. votes: b^{i'} = majority of block i''s pointers, B = majority of the
//      block votes, R = majority of leader block B's round counters r
//      (Lemma 3: eventually a consistent τ-counter for ≥ τ rounds);
//   4. executes instruction set I_R of the self-stabilising phase king
//      (Table 2), which establishes and then forever maintains agreement on
//      the output register a ∈ [C] (Lemmas 4–5).
//
// Costs exactly as in the paper: T(B) ≤ T(A) + 3(F+2)(2m)^k and
// S(B) = S(A) + ⌈log(C+1)⌉ + 1 bits (state layout: [inner | a | d]).
#pragma once

#include <vector>

#include "counting/algorithm.hpp"
#include "phaseking/phase_king.hpp"

namespace synccount::boosting {

using counting::AlgorithmPtr;
using counting::NodeId;
using counting::State;

// Strict majority over small unsigned values in [0, bound): returns the value
// occurring more than `threshold` times, or `fallback` if none does. The
// paper lets the majority function return an arbitrary value when no correct
// majority exists; like the paper we default to 0 (any fixed choice works).
// Shared by the scalar votes() and the composed batched backend
// (sim/composed_runner.hpp) so the two cannot drift apart.
std::uint64_t strict_majority(std::span<const std::uint64_t> values, std::uint64_t bound,
                              std::size_t threshold, std::vector<std::uint32_t>& scratch,
                              std::uint64_t fallback = 0);

struct BoostParams {
  int k = 0;           // number of blocks (>= 3)
  int F = 0;           // boosted resilience, F < (f+1)·ceil(k/2)
  std::uint64_t C = 0; // output counter size (> 1)
};

class BoostedCounter final : public counting::CountingAlgorithm {
 public:
  BoostedCounter(AlgorithmPtr inner, const BoostParams& params);

  int num_nodes() const noexcept override { return N_; }
  int resilience() const noexcept override { return params_.F; }
  std::uint64_t modulus() const noexcept override { return params_.C; }
  int state_bits() const noexcept override { return total_bits_; }
  std::optional<std::uint64_t> stabilisation_bound() const noexcept override;
  bool deterministic() const noexcept override { return inner_->deterministic(); }
  std::string name() const override;

  State transition(NodeId v, std::span<const State> received,
                   counting::TransitionContext& ctx) const override;
  std::uint64_t output(NodeId v, const State& s) const override;
  State canonicalize(const State& raw) const override;

  // --- Introspection (tests, Figure 1/2 benches) --------------------------
  int k() const noexcept { return params_.k; }
  int m() const noexcept { return m_; }
  int tau() const noexcept { return tau_; }
  int block_size() const noexcept { return n_inner_; }
  int block_of(NodeId v) const noexcept { return v / n_inner_; }
  const CountingAlgorithm& inner() const noexcept { return *inner_; }

  // c_i = τ(2m)^{i+1}: modulus of the derived counter of block i.
  std::uint64_t block_modulus(int block) const;

  // The additive stabilisation-time cost of this level, c_k = τ(2m)^k.
  std::uint64_t level_time_cost() const noexcept { return ck_; }

  struct Decoded {
    State inner;        // inner-state bits
    std::uint64_t a;    // phase-king output register ([C] or kInfinity)
    bool d;             // phase-king auxiliary flag
  };
  Decoded decode(const State& s) const;
  State encode(const Decoded& d) const;

  // O(1): zeroed inner state with the phase-king register set to `target`.
  State state_with_output(NodeId i, std::uint64_t target) const override;

  struct BlockView {
    std::uint64_t value;  // A_i output: (inner output) mod c_i
    std::uint64_t r;      // value mod τ
    std::uint64_t y;      // value / τ
    std::uint64_t b;      // leader pointer ⌊y/(2m)^i⌋ mod m
  };
  // Derived-counter view of node (block, j)'s state.
  BlockView block_view(int block, NodeId j, const State& s) const;

  struct Votes {
    std::vector<std::uint64_t> block_leader;  // b^{i'} per block
    std::uint64_t B;                          // voted leader block
    std::uint64_t R;                          // voted round counter
  };
  // The majority votes as computed from a received state vector (what step 3
  // of the construction evaluates at any node this round).
  Votes votes(std::span<const State> received) const;

 private:
  AlgorithmPtr inner_;
  BoostParams params_;
  int n_inner_;
  int N_;
  int m_;
  int tau_;
  std::uint64_t ck_;                   // τ(2m)^k
  std::vector<std::uint64_t> pow2m_;   // (2m)^i, i in [0, k]
  int inner_bits_;
  int a_bits_;
  int total_bits_;
  phaseking::Params pk_;
};

}  // namespace synccount::boosting
