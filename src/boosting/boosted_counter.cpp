#include "boosting/boosted_counter.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/math.hpp"

namespace synccount::boosting {

std::uint64_t strict_majority(std::span<const std::uint64_t> values, std::uint64_t bound,
                              std::size_t threshold, std::vector<std::uint32_t>& scratch,
                              std::uint64_t fallback) {
  if (scratch.size() < bound) scratch.resize(bound, 0);
  std::uint64_t winner = fallback;
  bool found = false;
  for (std::uint64_t v : values) {
    SC_ASSERT(v < bound);
    if (++scratch[static_cast<std::size_t>(v)] > threshold) {
      winner = v;
      found = true;
    }
  }
  for (std::uint64_t v : values) scratch[static_cast<std::size_t>(v)] = 0;
  return found ? winner : fallback;
}

BoostedCounter::BoostedCounter(AlgorithmPtr inner, const BoostParams& params)
    : inner_(std::move(inner)), params_(params) {
  SC_CHECK(inner_ != nullptr, "no inner algorithm");
  SC_CHECK(params_.k >= 3, "need at least 3 blocks (Theorem 1)");
  SC_CHECK(params_.C >= 2, "output counter size must be at least 2");
  SC_CHECK(params_.F >= 0, "resilience must be non-negative");

  n_inner_ = inner_->num_nodes();
  N_ = params_.k * n_inner_;
  m_ = (params_.k + 1) / 2;  // ceil(k/2)
  tau_ = 3 * (params_.F + 2);

  // F < (f+1)·m: a majority of blocks has at most f faults.
  const auto f_inner = static_cast<std::uint64_t>(inner_->resilience());
  SC_CHECK(static_cast<std::uint64_t>(params_.F) < (f_inner + 1) * static_cast<std::uint64_t>(m_),
           "resilience too large: need F < (f+1)·ceil(k/2)");

  // Precompute (2m)^i and the level cost c_k = τ(2m)^k with overflow checks.
  pow2m_.resize(static_cast<std::size_t>(params_.k) + 1);
  pow2m_[0] = 1;
  for (int i = 1; i <= params_.k; ++i) {
    auto p = util::checked_mul(pow2m_[static_cast<std::size_t>(i - 1)],
                               static_cast<std::uint64_t>(2 * m_));
    SC_CHECK(p.has_value(), "(2m)^k overflows uint64: choose smaller k");
    pow2m_[static_cast<std::size_t>(i)] = *p;
  }
  auto ck = util::checked_mul(static_cast<std::uint64_t>(tau_), pow2m_[static_cast<std::size_t>(params_.k)]);
  SC_CHECK(ck.has_value(), "tau*(2m)^k overflows uint64");
  ck_ = *ck;

  // The inner counter must count modulo a multiple of τ(2m)^k so that every
  // block modulus c_i divides it.
  SC_CHECK(inner_->modulus() % ck_ == 0,
           "inner modulus must be a multiple of 3(F+2)(2m)^k");

  // Phase king needs N > 3F (implied by F < (f+1)m and f < n/3 in the paper;
  // checked explicitly because the trivial base has f = 0 = n/3).
  pk_ = phaseking::Params{N_, params_.F, params_.C};
  pk_.validate();

  inner_bits_ = inner_->state_bits();
  a_bits_ = phaseking::a_bits(params_.C);
  total_bits_ = inner_bits_ + a_bits_ + 1;
  SC_CHECK(total_bits_ <= util::BitVec::kCapacityBits,
           "state too wide: increase BitVec capacity");
}

std::optional<std::uint64_t> BoostedCounter::stabilisation_bound() const noexcept {
  const auto inner_bound = inner_->stabilisation_bound();
  if (!inner_bound) return std::nullopt;
  return *inner_bound + ck_;  // T(B) <= T(A) + 3(F+2)(2m)^k
}

std::string BoostedCounter::name() const {
  return "boosted(k=" + std::to_string(params_.k) + ",F=" + std::to_string(params_.F) +
         ",C=" + std::to_string(params_.C) + ")<" + inner_->name() + ">";
}

std::uint64_t BoostedCounter::block_modulus(int block) const {
  SC_CHECK(block >= 0 && block < params_.k, "block index out of range");
  return static_cast<std::uint64_t>(tau_) * pow2m_[static_cast<std::size_t>(block) + 1];
}

BoostedCounter::Decoded BoostedCounter::decode(const State& s) const {
  Decoded d;
  d.inner = s;
  d.inner.truncate(inner_bits_);
  d.a = phaseking::decode_a(s.get_bits(inner_bits_, a_bits_), params_.C);
  d.d = s.get_bit(inner_bits_ + a_bits_);
  return d;
}

State BoostedCounter::encode(const Decoded& d) const {
  State s = d.inner;
  s.truncate(inner_bits_);
  s.set_bits(inner_bits_, a_bits_, phaseking::encode_a(d.a, params_.C));
  s.set_bit(inner_bits_ + a_bits_, d.d);
  return s;
}

State BoostedCounter::state_with_output(NodeId /*i*/, std::uint64_t target) const {
  SC_CHECK(target < params_.C, "output target out of range");
  Decoded d;
  d.inner = inner_->canonicalize(State{});
  d.a = target;
  d.d = true;
  return encode(d);
}

BoostedCounter::BlockView BoostedCounter::block_view(int block, NodeId j, const State& s) const {
  State inner_state = s;
  inner_state.truncate(inner_bits_);
  const std::uint64_t out = inner_->output(j, inner_state);
  BlockView v;
  v.value = out % block_modulus(block);
  v.r = v.value % static_cast<std::uint64_t>(tau_);
  v.y = v.value / static_cast<std::uint64_t>(tau_);
  v.b = (v.y / pow2m_[static_cast<std::size_t>(block)]) % static_cast<std::uint64_t>(m_);
  return v;
}

BoostedCounter::Votes BoostedCounter::votes(std::span<const State> received) const {
  SC_ASSERT(static_cast<int>(received.size()) == N_);
  const auto n = static_cast<std::size_t>(n_inner_);
  std::vector<std::uint32_t> scratch;

  // Per-node derived views. b and r are needed for all nodes (b for the block
  // votes, r for reading the elected block's round counter).
  std::vector<std::uint64_t> b_all(static_cast<std::size_t>(N_));
  std::vector<std::uint64_t> r_all(static_cast<std::size_t>(N_));
  for (int u = 0; u < N_; ++u) {
    const int blk = u / n_inner_;
    const BlockView bv = block_view(blk, u % n_inner_, received[static_cast<std::size_t>(u)]);
    b_all[static_cast<std::size_t>(u)] = bv.b;
    r_all[static_cast<std::size_t>(u)] = bv.r;
  }

  Votes res;
  // b^{i'} = majority{ b[i',j] : j } over each block (> n/2 votes needed).
  res.block_leader.resize(static_cast<std::size_t>(params_.k));
  for (int blk = 0; blk < params_.k; ++blk) {
    const std::span<const std::uint64_t> block_b(b_all.data() + static_cast<std::size_t>(blk) * n, n);
    res.block_leader[static_cast<std::size_t>(blk)] =
        strict_majority(block_b, static_cast<std::uint64_t>(m_), n / 2, scratch);
  }
  // B = majority{ b^{i'} } (> k/2 votes needed).
  res.B = strict_majority(res.block_leader, static_cast<std::uint64_t>(m_),
                          static_cast<std::size_t>(params_.k) / 2, scratch);
  // R = majority{ r[B,j] : j } over the elected block.
  const std::span<const std::uint64_t> leader_r(r_all.data() + static_cast<std::size_t>(res.B) * n, n);
  res.R = strict_majority(leader_r, static_cast<std::uint64_t>(tau_), n / 2, scratch);
  return res;
}

State BoostedCounter::transition(NodeId v, std::span<const State> received,
                                 counting::TransitionContext& ctx) const {
  SC_ASSERT(static_cast<int>(received.size()) == N_);
  const int i = v / n_inner_;  // own block
  const int j = v % n_inner_;  // index within the block

  // 1. Update the state of algorithm A_i on the own block's inner states.
  std::vector<State> block_states(static_cast<std::size_t>(n_inner_));
  for (int jj = 0; jj < n_inner_; ++jj) {
    block_states[static_cast<std::size_t>(jj)] =
        received[static_cast<std::size_t>(i * n_inner_ + jj)];
    block_states[static_cast<std::size_t>(jj)].truncate(inner_bits_);
  }
  const State inner_next = inner_->transition(j, block_states, ctx);

  // 2. Compute the voted round counter R.
  const Votes vt = votes(received);

  // 3. Execute instruction set I_R of the phase king.
  std::vector<std::uint64_t> received_a(static_cast<std::size_t>(N_));
  for (int u = 0; u < N_; ++u) {
    received_a[static_cast<std::size_t>(u)] = phaseking::decode_a(
        received[static_cast<std::size_t>(u)].get_bits(inner_bits_, a_bits_), params_.C);
  }
  const phaseking::Registers own{received_a[static_cast<std::size_t>(v)],
                                 received[static_cast<std::size_t>(v)].get_bit(inner_bits_ + a_bits_)};
  const phaseking::Registers next =
      phaseking::step(pk_, static_cast<int>(vt.R), v, own, received_a);

  // Serialise [inner | a | d].
  State s = inner_next;
  s.truncate(inner_bits_);
  s.set_bits(inner_bits_, a_bits_, phaseking::encode_a(next.a, params_.C));
  s.set_bit(inner_bits_ + a_bits_, next.d);
  return s;
}

std::uint64_t BoostedCounter::output(NodeId /*v*/, const State& s) const {
  const std::uint64_t a = phaseking::decode_a(s.get_bits(inner_bits_, a_bits_), params_.C);
  return a == phaseking::kInfinity ? 0 : a;
}

State BoostedCounter::canonicalize(const State& raw) const {
  State inner_raw = raw;
  inner_raw.truncate(inner_bits_);
  State s = inner_->canonicalize(inner_raw);
  SC_ASSERT([&] {
    State check = s;
    check.truncate(inner_bits_);
    return check == s;
  }());
  // a: any pattern >= C means ∞ and re-encodes as C; d passes through.
  const std::uint64_t a_pat = raw.get_bits(inner_bits_, a_bits_);
  s.set_bits(inner_bits_, a_bits_,
             phaseking::encode_a(phaseking::decode_a(a_pat, params_.C), params_.C));
  s.set_bit(inner_bits_ + a_bits_, raw.get_bit(inner_bits_ + a_bits_));
  return s;
}

}  // namespace synccount::boosting
