#include "boosting/leader_split_adversary.hpp"

#include "util/check.hpp"
#include "util/math.hpp"

namespace synccount::boosting {

LeaderSplitAdversary::LeaderSplitAdversary(std::shared_ptr<const BoostedCounter> algo)
    : algo_(std::move(algo)) {
  SC_CHECK(algo_ != nullptr, "no algorithm");
}

void LeaderSplitAdversary::begin_round(std::uint64_t /*round*/,
                                       std::span<const sim::State> true_states,
                                       const counting::CountingAlgorithm& /*algo*/,
                                       std::span<const counting::NodeId> /*faulty_ids*/,
                                       util::Rng& /*rng*/) {
  // Compute the votes an honest observer would take this round, then craft
  // one state backing the incumbent leader with a skewed round counter and
  // one backing the next candidate, both with poisoned phase-king registers.
  const BoostedCounter::Votes vt = algo_->votes(true_states);
  const auto m = static_cast<std::uint64_t>(algo_->m());
  const auto tau = static_cast<std::uint64_t>(algo_->tau());
  const std::uint64_t leader[2] = {vt.B % m, (vt.B + 1) % m};
  const std::uint64_t rounds[2] = {vt.R % tau, (vt.R + tau / 2) % tau};

  for (int side = 0; side < 2; ++side) {
    BoostedCounter::Decoded d;
    // Inner output value o = r + tau * (2m)^0 * ... : block-dependent parts
    // are folded in message() via the sender's block modulus; here we build
    // the block-0 shape and rely on the nested moduli dividing each other:
    // an inner output of r + tau*(2m)^{k-1}*b has pointer b in *every*
    // block i, because (2m)^{k-1} is a multiple of (2m)^i for i < k and the
    // division by (2m)^i then reduces mod m to b ... for i = k-1 exactly;
    // for smaller i the pointer cycles faster, which only adds noise on the
    // attacker's side. We target the top block scale, where Lemma 2's
    // alignment is slowest.
    const std::uint64_t y = util::ipow(2 * static_cast<std::uint64_t>(algo_->m()),
                                       static_cast<unsigned>(algo_->k() - 1)) *
                            leader[side];
    const std::uint64_t o = rounds[side] + tau * y;
    d.inner = algo_->inner().state_with_output(0, o % algo_->inner().modulus());
    d.a = side == 0 ? phaseking::kInfinity : 1;  // reset vs. conflicting value
    d.d = side == 1;
    crafted_[side] = algo_->encode(d);
  }
}

sim::State LeaderSplitAdversary::message(std::uint64_t /*round*/, counting::NodeId /*sender*/,
                                         counting::NodeId receiver,
                                         std::span<const sim::State> /*true_states*/,
                                         const counting::CountingAlgorithm& /*algo*/,
                                         util::Rng& /*rng*/) {
  return crafted_[receiver % 2];
}

}  // namespace synccount::boosting
