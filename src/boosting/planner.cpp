#include "boosting/planner.hpp"

#include <cmath>

#include "counting/trivial.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace synccount::boosting {

std::uint64_t required_input_modulus(int k, int F) {
  SC_CHECK(k >= 3, "need at least 3 blocks");
  SC_CHECK(F >= 0, "resilience must be non-negative");
  const int m = (k + 1) / 2;
  const auto tau = static_cast<std::uint64_t>(3 * (F + 2));
  const std::uint64_t p = util::ipow(static_cast<std::uint64_t>(2 * m), static_cast<unsigned>(k));
  auto r = util::checked_mul(tau, p);
  SC_CHECK(r.has_value(), "3(F+2)(2m)^k overflows uint64");
  return *r;
}

namespace {

// Assign the inter-level moduli: the top level outputs C_target, every lower
// level must output exactly what the level above requires of its input.
void thread_moduli(Plan& plan, std::uint64_t C_target) {
  SC_CHECK(!plan.levels.empty(), "plan has no levels");
  plan.levels.back().C = C_target;
  for (std::size_t i = plan.levels.size() - 1; i-- > 0;) {
    plan.levels[i].C =
        required_input_modulus(plan.levels[i + 1].k, plan.levels[i + 1].F);
  }
  plan.base_modulus = required_input_modulus(plan.levels[0].k, plan.levels[0].F);
}

}  // namespace

Plan plan_corollary1(int F, std::uint64_t C) {
  SC_CHECK(F >= 1, "Corollary 1 needs F >= 1");
  SC_CHECK(C >= 2, "counter modulus must be at least 2");
  Plan plan;
  plan.label = "corollary1(F=" + std::to_string(F) + ")";
  plan.levels.push_back(LevelSpec{3 * F + 1, F, C});
  thread_moduli(plan, C);
  return plan;
}

Plan plan_fixed_k(int k, int levels, std::uint64_t C) {
  SC_CHECK(k >= 4, "fixed-k schedule needs k >= 4 for a usable first level");
  SC_CHECK(levels >= 1, "need at least one level");
  SC_CHECK(C >= 2, "counter modulus must be at least 2");
  Plan plan;
  plan.label = "theorem2(k=" + std::to_string(k) + ",L=" + std::to_string(levels) + ")";
  const int m = (k + 1) / 2;
  int f_prev = 0;
  std::uint64_t n_prev = 1;
  for (int i = 0; i < levels; ++i) {
    const auto N = n_prev * static_cast<std::uint64_t>(k);
    // F < (f+1)·m boosts the resilience; the phase king additionally needs
    // N > 3F (binding only on the first level where blocks are single nodes).
    const auto by_boost = static_cast<std::uint64_t>(f_prev + 1) * static_cast<std::uint64_t>(m) - 1;
    const auto by_n = (N - 1) / 3;
    const int F = static_cast<int>(std::min(by_boost, by_n));
    plan.levels.push_back(LevelSpec{k, F, 0});
    f_prev = F;
    n_prev = N;
  }
  thread_moduli(plan, C);
  return plan;
}

Plan plan_practical(int f_target, std::uint64_t C) {
  SC_CHECK(f_target >= 1, "resilience target must be at least 1");
  SC_CHECK(C >= 2, "counter modulus must be at least 2");
  Plan plan;
  plan.label = "practical(f=" + std::to_string(f_target) + ")";
  // Level 1: four one-node blocks, F = 1 (the A(4,1) building block).
  plan.levels.push_back(LevelSpec{4, 1, 0});
  int f = 1;
  // Then k = 3 levels: F can grow to 2f+1; cap the last level at f_target.
  while (f < f_target) {
    const int next = std::min(2 * f + 1, f_target);
    plan.levels.push_back(LevelSpec{3, next, 0});
    f = next;
  }
  thread_moduli(plan, C);
  return plan;
}

counting::AlgorithmPtr build_levels(counting::AlgorithmPtr base,
                                    std::span<const LevelSpec> levels) {
  SC_CHECK(base != nullptr, "no base algorithm");
  counting::AlgorithmPtr algo = std::move(base);
  for (const LevelSpec& lv : levels) {
    algo = std::make_shared<BoostedCounter>(algo, BoostParams{lv.k, lv.F, lv.C});
  }
  return algo;
}

counting::AlgorithmPtr build_plan(const Plan& plan) {
  SC_CHECK(plan.base_modulus >= 2, "plan has no base modulus (not threaded?)");
  return build_levels(std::make_shared<counting::TrivialCounter>(plan.base_modulus),
                      plan.levels);
}

PlanInfo analyze(const counting::CountingAlgorithm& algo) {
  PlanInfo info;
  info.n = algo.num_nodes();
  info.f = algo.resilience();
  info.modulus = algo.modulus();
  info.time_bound = algo.stabilisation_bound().value_or(0);
  info.state_bits = algo.state_bits();
  return info;
}

std::vector<Theorem3Row> theorem3_analysis(int P) {
  SC_CHECK(P >= 1, "need at least one phase");
  std::vector<Theorem3Row> rows;
  // Base: f = 1 on n = 4 nodes (any 1-resilient 4-node counter).
  double lf = 0.0;        // log2(f)
  double ln = 2.0;        // log2(n)
  double ltime = std::log2(2304.0);  // the trivial-base A(4,1) level cost
  double bits = 12.0;     // its state bits
  for (int p = 1; p <= P; ++p) {
    const int k = 4 * (1 << (P - p));
    const int R = 2 * k;
    Theorem3Row row;
    row.phase = p;
    row.k = k;
    row.iterations = R;
    const double lk = std::log2(static_cast<double>(k));
    for (int i = 0; i < R; ++i) {
      lf += lk - 1.0;  // f <- f·(k/2)
      ln += lk;        // n <- n·k
      // T += 3(f+2)(2m)^k with m = k/2, i.e. (2m)^k = k^k:
      const double lterm = std::log2(3.0) + lf + static_cast<double>(k) * lk;
      const double mx = std::max(ltime, lterm);
      ltime = mx + std::log2(1.0 + std::exp2(std::min(ltime, lterm) - mx));
      // S += ceil(log(C+1)) + 1 with C = 3(F+2)(2m)^k of the level above;
      // the log2 of that counter is lterm again (up to rounding).
      bits += lterm + 1.0;
    }
    row.log2_f = lf;
    row.log2_n = ln;
    row.log2_time = ltime;
    row.state_bits = bits;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace synccount::boosting
