// A construction-aware Byzantine strategy against BoostedCounter: instead of
// generic bit noise it decodes the correct nodes' states, computes the
// leader votes the construction is about to take, and then crafts per-
// receiver inner states that (a) vote for the *trailing* leader candidate to
// split the block majorities, and (b) impersonate the phase king with
// conflicting a-registers whenever a faulty node is the current king.
//
// This is the attack the Theorem 1 proof has to survive: it cannot break
// the bound (majorities of correct nodes dominate; the king rotation passes
// through a correct king), but it reliably produces the slowest observed
// stabilisations in the E10 ablation.
#pragma once

#include <memory>

#include "boosting/boosted_counter.hpp"
#include "sim/adversary.hpp"

namespace synccount::boosting {

class LeaderSplitAdversary final : public sim::Adversary {
 public:
  // The algorithm under attack must be (a top level of) a BoostedCounter.
  explicit LeaderSplitAdversary(std::shared_ptr<const BoostedCounter> algo);

  void begin_round(std::uint64_t round, std::span<const sim::State> true_states,
                   const counting::CountingAlgorithm& algo,
                   std::span<const counting::NodeId> faulty_ids, util::Rng& rng) override;

  sim::State message(std::uint64_t round, counting::NodeId sender, counting::NodeId receiver,
                     std::span<const sim::State> true_states,
                     const counting::CountingAlgorithm& algo, util::Rng& rng) override;

  std::string name() const override { return "leader-split"; }

 private:
  std::shared_ptr<const BoostedCounter> algo_;
  // Two crafted full states per round: one voting for each side of the
  // current leader split, with poisoned phase-king registers.
  sim::State crafted_[2];
};

}  // namespace synccount::boosting
