// Recursion planners for Section 4: choose the per-level (k, F, C)
// parameters, thread the modulus constraint of Theorem 1 through the levels
// (level i's inner counter must count modulo a multiple of 3(F+2)(2m)^k),
// and build the resulting algorithm on top of the trivial 1-node base
// (Corollary 1) or any caller-supplied base.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "boosting/boosted_counter.hpp"
#include "counting/algorithm.hpp"

namespace synccount::boosting {

struct LevelSpec {
  int k = 0;
  int F = 0;
  std::uint64_t C = 0;  // output modulus of this level (filled by the planner
                        // for all but the top level)
};

struct Plan {
  std::uint64_t base_modulus = 0;  // modulus of the trivial base counter
  std::vector<LevelSpec> levels;   // bottom-up
  std::string label;
};

// Diagnostics of a (built) plan.
struct PlanInfo {
  int n = 0;
  int f = 0;
  std::uint64_t modulus = 0;
  std::uint64_t time_bound = 0;  // Theorem 1 bound, summed over levels
  int state_bits = 0;
};

// 3(F+2)(2m)^k: the modulus granularity Theorem 1 requires of its input.
std::uint64_t required_input_modulus(int k, int F);

// Corollary 1: optimal resilience F < N/3 via one level of k = 3F+1
// one-node blocks; stabilisation time F^{O(F)}.
Plan plan_corollary1(int F, std::uint64_t C);

// Theorem 2 flavour: `levels` levels with the same k (>= 4). Resilience grows
// by a factor of ceil(k/2) per level; time stays O(f) per level but carries
// the (2m)^k = 2^{O(k)} constant.
Plan plan_fixed_k(int k, int levels, std::uint64_t C);

// Practical schedule (the Figure 2 shape): one k=4 level from the trivial
// base (F=1), then k=3 levels doubling F+1 until the resilience target is
// reached; the last level is capped to exactly f_target. Minimises simulated
// stabilisation time among our schedules.
Plan plan_practical(int f_target, std::uint64_t C);

// Builds the plan bottom-up on the trivial base.
counting::AlgorithmPtr build_plan(const Plan& plan);

// Builds the given levels on an arbitrary base counter (the base's modulus
// must satisfy the first level's requirement; checked by BoostedCounter).
counting::AlgorithmPtr build_levels(counting::AlgorithmPtr base,
                                    std::span<const LevelSpec> levels);

PlanInfo analyze(const counting::CountingAlgorithm& algo);

// ---------------------------------------------------------------------------
// Theorem 3 closed-form analysis (the varying-k schedule k_p = 4·2^{P-p},
// R_p = 2·k_p). The instances are astronomically large, so this reports
// log-space diagnostics instead of building them: per phase and in total,
// log2(n), log2(f), log2(T) and the state-bit count.
struct Theorem3Row {
  int phase = 0;       // p
  int k = 0;           // k_p
  int iterations = 0;  // R_p
  double log2_f = 0;
  double log2_n = 0;
  double log2_time = 0;
  double state_bits = 0;
};
std::vector<Theorem3Row> theorem3_analysis(int P);

}  // namespace synccount::boosting
