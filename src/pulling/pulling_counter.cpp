#include "pulling/pulling_counter.hpp"

#include <algorithm>

#include "boosting/planner.hpp"
#include "counting/trivial.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace synccount::pulling {

std::uint64_t sampled_majority(std::span<const std::uint64_t> values, std::uint64_t bound,
                               std::vector<std::uint32_t>& scratch) {
  if (scratch.size() < bound) scratch.resize(bound, 0);
  std::uint64_t winner = 0;
  bool found = false;
  const std::size_t threshold = values.size() / 2;
  for (std::uint64_t v : values) {
    SC_ASSERT(v < bound);
    if (++scratch[static_cast<std::size_t>(v)] > threshold) {
      winner = v;
      found = true;
    }
  }
  for (std::uint64_t v : values) scratch[static_cast<std::size_t>(v)] = 0;
  return found ? winner : 0;
}

PullingBoostedCounter::PullingBoostedCounter(AlgorithmPtr inner, const PullParams& params)
    : inner_(std::move(inner)), params_(params) {
  SC_CHECK(inner_ != nullptr, "no inner algorithm");
  SC_CHECK(params_.k >= 3, "need at least 3 blocks");
  SC_CHECK(params_.C >= 2, "output counter size must be at least 2");
  SC_CHECK(params_.F >= 0, "resilience must be non-negative");
  SC_CHECK(params_.sample_size >= 1, "need a positive sample size");
  SC_CHECK(params_.gamma > 0, "gamma must be positive");

  n_inner_ = inner_->num_nodes();
  N_ = params_.k * n_inner_;
  m_ = (params_.k + 1) / 2;
  tau_ = 3 * (params_.F + 2);

  const auto f_inner = static_cast<std::uint64_t>(inner_->resilience());
  SC_CHECK(static_cast<std::uint64_t>(params_.F) < (f_inner + 1) * static_cast<std::uint64_t>(m_),
           "resilience too large: need F < (f+1)·ceil(k/2)");
  // Theorem 4's strengthened constraint F < N/(3+gamma).
  SC_CHECK(static_cast<double>(params_.F) * (3.0 + params_.gamma) < static_cast<double>(N_),
           "Theorem 4 requires F < N/(3+gamma)");

  pow2m_.resize(static_cast<std::size_t>(params_.k) + 1);
  pow2m_[0] = 1;
  for (int i = 1; i <= params_.k; ++i) {
    auto p = util::checked_mul(pow2m_[static_cast<std::size_t>(i - 1)],
                               static_cast<std::uint64_t>(2 * m_));
    SC_CHECK(p.has_value(), "(2m)^k overflows uint64");
    pow2m_[static_cast<std::size_t>(i)] = *p;
  }
  auto ck = util::checked_mul(static_cast<std::uint64_t>(tau_),
                              pow2m_[static_cast<std::size_t>(params_.k)]);
  SC_CHECK(ck.has_value(), "tau*(2m)^k overflows uint64");
  ck_ = *ck;
  SC_CHECK(inner_->modulus() % ck_ == 0,
           "inner modulus must be a multiple of 3(F+2)(2m)^k");

  pk_ = phaseking::Params{N_, params_.F, params_.C};
  pk_.validate();

  inner_bits_ = inner_->state_bits();
  a_bits_ = phaseking::a_bits(params_.C);
  total_bits_ = inner_bits_ + a_bits_ + 1;
  SC_CHECK(total_bits_ <= util::BitVec::kCapacityBits, "state too wide");
}

std::optional<std::uint64_t> PullingBoostedCounter::stabilisation_bound() const noexcept {
  const auto inner_bound = inner_->stabilisation_bound();
  if (!inner_bound) return std::nullopt;
  return *inner_bound + ck_;  // Theorem 4: holds w.h.p.
}

std::string PullingBoostedCounter::name() const {
  return std::string("pulling(k=") + std::to_string(params_.k) + ",F=" + std::to_string(params_.F) +
         ",C=" + std::to_string(params_.C) + ",M=" + std::to_string(params_.sample_size) +
         (params_.mode == SamplingMode::kFixed ? ",fixed" : ",fresh") + ")<" + inner_->name() +
         ">";
}

State PullingBoostedCounter::transition(NodeId v, std::span<const State> received,
                                        counting::TransitionContext& ctx) const {
  SC_ASSERT(static_cast<int>(received.size()) == N_);
  const int i = v / n_inner_;
  const int j = v % n_inner_;
  const auto M = static_cast<std::size_t>(params_.sample_size);

  // Sampling source: fresh randomness (Theorem 4) or a per-node generator
  // reseeded identically every round, i.e. random bits fixed once (Cor. 5).
  util::Rng fixed_rng(util::hash_combine(params_.seed, static_cast<std::uint64_t>(v)));
  util::Rng& rng = params_.mode == SamplingMode::kFixed ? fixed_rng : ctx.rand();

  // 1. Update A_i on the own block (the node pulls its whole block: deep
  // levels are small, cf. "perform the step deterministically" in §5.3).
  std::vector<State> block_states(static_cast<std::size_t>(n_inner_));
  for (int jj = 0; jj < n_inner_; ++jj) {
    block_states[static_cast<std::size_t>(jj)] =
        received[static_cast<std::size_t>(i * n_inner_ + jj)];
    block_states[static_cast<std::size_t>(jj)].truncate(inner_bits_);
  }
  const State inner_next = inner_->transition(j, block_states, ctx);
  ctx.messages_pulled += static_cast<std::uint64_t>(n_inner_);

  // 2. Sampled majority votes (Lemma 9): M states per block, with repetition.
  std::vector<std::uint32_t> scratch;
  std::vector<std::uint64_t> block_votes(static_cast<std::size_t>(params_.k));
  std::vector<std::uint64_t> bvals(M);
  std::vector<std::vector<std::uint32_t>> samples(static_cast<std::size_t>(params_.k));
  for (int blk = 0; blk < params_.k; ++blk) {
    auto& sample = samples[static_cast<std::size_t>(blk)];
    sample.resize(M);
    for (std::size_t t = 0; t < M; ++t) {
      sample[t] = static_cast<std::uint32_t>(rng.next_below(static_cast<std::uint64_t>(n_inner_)));
    }
    ctx.messages_pulled += M;
    for (std::size_t t = 0; t < M; ++t) {
      const int u = blk * n_inner_ + static_cast<int>(sample[t]);
      // Derived leader pointer of the sampled node (see BoostedCounter).
      State inner_state = received[static_cast<std::size_t>(u)];
      inner_state.truncate(inner_bits_);
      const std::uint64_t out =
          inner_->output(static_cast<int>(sample[t]), inner_state) % (static_cast<std::uint64_t>(tau_) * pow2m_[static_cast<std::size_t>(blk) + 1]);
      const std::uint64_t y = out / static_cast<std::uint64_t>(tau_);
      bvals[t] = (y / pow2m_[static_cast<std::size_t>(blk)]) % static_cast<std::uint64_t>(m_);
    }
    block_votes[static_cast<std::size_t>(blk)] =
        sampled_majority(bvals, static_cast<std::uint64_t>(m_), scratch);
  }
  const std::uint64_t B =
      sampled_majority(block_votes, static_cast<std::uint64_t>(m_), scratch);

  // R: reuse block B's samples, reading the r component this time.
  std::vector<std::uint64_t> rvals(M);
  {
    const auto& sample = samples[static_cast<std::size_t>(B)];
    for (std::size_t t = 0; t < M; ++t) {
      const int u = static_cast<int>(B) * n_inner_ + static_cast<int>(sample[t]);
      State inner_state = received[static_cast<std::size_t>(u)];
      inner_state.truncate(inner_bits_);
      const std::uint64_t out =
          inner_->output(static_cast<int>(sample[t]), inner_state) %
          (static_cast<std::uint64_t>(tau_) * pow2m_[static_cast<std::size_t>(B) + 1]);
      rvals[t] = out % static_cast<std::uint64_t>(tau_);
    }
  }
  const std::uint64_t R =
      sampled_majority(rvals, static_cast<std::uint64_t>(tau_), scratch);

  // 3. Sampled phase king (Lemma 8): M samples from the whole network plus a
  // direct pull of the king.
  std::vector<std::uint64_t> sampled_a(M);
  for (std::size_t t = 0; t < M; ++t) {
    const auto u = rng.next_below(static_cast<std::uint64_t>(N_));
    sampled_a[t] = phaseking::decode_a(
        received[static_cast<std::size_t>(u)].get_bits(inner_bits_, a_bits_), params_.C);
  }
  ctx.messages_pulled += M;
  const int king = static_cast<int>(R) / 3;
  const std::uint64_t king_a = phaseking::decode_a(
      received[static_cast<std::size_t>(king)].get_bits(inner_bits_, a_bits_), params_.C);
  ctx.messages_pulled += 1;

  const phaseking::Registers own{
      phaseking::decode_a(received[static_cast<std::size_t>(v)].get_bits(inner_bits_, a_bits_),
                          params_.C),
      received[static_cast<std::size_t>(v)].get_bit(inner_bits_ + a_bits_)};
  const phaseking::Registers next =
      phaseking::step_sampled(pk_, static_cast<int>(R), own, sampled_a, king_a);

  State s = inner_next;
  s.truncate(inner_bits_);
  s.set_bits(inner_bits_, a_bits_, phaseking::encode_a(next.a, params_.C));
  s.set_bit(inner_bits_ + a_bits_, next.d);
  return s;
}

std::uint64_t PullingBoostedCounter::output(NodeId /*v*/, const State& s) const {
  const std::uint64_t a = phaseking::decode_a(s.get_bits(inner_bits_, a_bits_), params_.C);
  return a == phaseking::kInfinity ? 0 : a;
}

State PullingBoostedCounter::canonicalize(const State& raw) const {
  State inner_raw = raw;
  inner_raw.truncate(inner_bits_);
  State s = inner_->canonicalize(inner_raw);
  const std::uint64_t a_pat = raw.get_bits(inner_bits_, a_bits_);
  s.set_bits(inner_bits_, a_bits_,
             phaseking::encode_a(phaseking::decode_a(a_pat, params_.C), params_.C));
  s.set_bit(inner_bits_ + a_bits_, raw.get_bit(inner_bits_ + a_bits_));
  return s;
}

counting::AlgorithmPtr build_pulling_practical(int f_target, std::uint64_t C, int sample_size,
                                               SamplingMode mode, std::uint64_t seed,
                                               int pulling_levels) {
  const boosting::Plan plan = boosting::plan_practical(f_target, C);
  SC_CHECK(pulling_levels >= 1, "need at least one pulling level");
  const std::size_t num_pulling =
      std::min<std::size_t>(static_cast<std::size_t>(pulling_levels), plan.levels.size());
  const std::size_t first_pulling = plan.levels.size() - num_pulling;

  counting::AlgorithmPtr algo =
      std::make_shared<counting::TrivialCounter>(plan.base_modulus);
  for (std::size_t i = 0; i < plan.levels.size(); ++i) {
    const auto& lv = plan.levels[i];
    if (i < first_pulling) {
      algo = std::make_shared<boosting::BoostedCounter>(
          algo, boosting::BoostParams{lv.k, lv.F, lv.C});
    } else {
      PullParams pp;
      pp.k = lv.k;
      pp.F = lv.F;
      pp.C = lv.C;
      pp.sample_size = sample_size;
      pp.mode = mode;
      // Independent per-level seed streams for the fixed-sampling mode.
      pp.seed = util::hash_combine(seed, static_cast<std::uint64_t>(i) + 1);
      algo = std::make_shared<PullingBoostedCounter>(algo, pp);
    }
  }
  return algo;
}

}  // namespace synccount::pulling
