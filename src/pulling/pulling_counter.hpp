// Section 5: communication-efficient counting in the pulling model.
//
// Instead of inspecting all N broadcast states, a node pulls:
//   * M uniformly sampled states (with repetition) from every block -- these
//     drive the sampled majority votes b^{i'}, B and R (Lemma 9),
//   * M uniformly sampled states from the whole network for the sampled
//     phase-king thresholds 2/3·M and 1/3·M (Lemma 8),
//   * the current king's state directly (one message).
// Total: O(k·M) = O(k log η) pulls per node per round (Theorem 4).
//
// Two sampling modes:
//   * kFresh  -- new random samples every round: the probabilistic counters
//     of Theorem 4 / Corollary 4 (each round fails with prob. η^{-κ}).
//   * kFixed  -- per-node samples drawn once from a seed and reused forever:
//     the pseudo-random counters of Corollary 5, which against an oblivious
//     adversary stabilise w.h.p. and then count correctly *deterministically*.
#pragma once

#include <vector>

#include "boosting/boosted_counter.hpp"
#include "counting/algorithm.hpp"
#include "phaseking/phase_king.hpp"

namespace synccount::pulling {

using counting::AlgorithmPtr;
using counting::NodeId;
using counting::State;

enum class SamplingMode {
  kFresh,  // Theorem 4: fresh randomness each round
  kFixed,  // Corollary 5: random bits fixed once (oblivious adversary)
};

struct PullParams {
  int k = 0;            // blocks
  int F = 0;            // resilience; Theorem 4 needs F < N/(3+gamma)
  std::uint64_t C = 0;  // output counter size
  int sample_size = 0;  // M = Theta(log eta)
  SamplingMode mode = SamplingMode::kFresh;
  std::uint64_t seed = 0x5eedULL;  // base seed for kFixed
  double gamma = 0.5;              // slack in the resilience constraint
};

// Majority over small sampled values with a strict > half threshold; defaults
// to 0 like the broadcast construction. Shared by the scalar transition and
// the composed batched backend (sim/composed_runner.hpp).
std::uint64_t sampled_majority(std::span<const std::uint64_t> values, std::uint64_t bound,
                               std::vector<std::uint32_t>& scratch);

class PullingBoostedCounter final : public counting::CountingAlgorithm {
 public:
  PullingBoostedCounter(AlgorithmPtr inner, const PullParams& params);

  int num_nodes() const noexcept override { return N_; }
  int resilience() const noexcept override { return params_.F; }
  std::uint64_t modulus() const noexcept override { return params_.C; }
  int state_bits() const noexcept override { return total_bits_; }
  // The Theorem 4 bound: holds with high probability, not deterministically.
  std::optional<std::uint64_t> stabilisation_bound() const noexcept override;
  bool deterministic() const noexcept override { return false; }
  std::string name() const override;

  State transition(NodeId v, std::span<const State> received,
                   counting::TransitionContext& ctx) const override;
  std::uint64_t output(NodeId v, const State& s) const override;
  State canonicalize(const State& raw) const override;

  // --- Introspection (tests, the composed batched backend) ----------------
  int k() const noexcept { return params_.k; }
  int m() const noexcept { return m_; }
  int tau() const noexcept { return tau_; }
  int sample_size() const noexcept { return params_.sample_size; }
  SamplingMode mode() const noexcept { return params_.mode; }
  std::uint64_t sampling_seed() const noexcept { return params_.seed; }
  double gamma() const noexcept { return params_.gamma; }
  const CountingAlgorithm& inner() const noexcept { return *inner_; }

 private:
  AlgorithmPtr inner_;
  PullParams params_;
  int n_inner_;
  int N_;
  int m_;
  int tau_;
  std::uint64_t ck_;
  std::vector<std::uint64_t> pow2m_;
  int inner_bits_;
  int a_bits_;
  int total_bits_;
  phaseking::Params pk_;
};

// Corollary 4 builder: stacks the practical recursion schedule with the top
// `pulling_levels` levels (default 1) in the pulling model; the remaining
// lower levels are exponentially smaller, so they pull from everyone,
// matching the paper's "if N <= threshold, perform the step
// deterministically" rule in Section 5.3.
counting::AlgorithmPtr build_pulling_practical(int f_target, std::uint64_t C, int sample_size,
                                               SamplingMode mode, std::uint64_t seed = 0x5eedULL,
                                               int pulling_levels = 1);

}  // namespace synccount::pulling
