#include "apps/repeated_consensus.hpp"

#include "util/check.hpp"
#include "util/math.hpp"

namespace synccount::apps {

RepeatedConsensus::RepeatedConsensus(AlgorithmPtr counter, int F, std::uint64_t values,
                                     std::vector<std::uint64_t> proposals)
    : counter_(std::move(counter)), F_(F), V_(values), proposals_(std::move(proposals)) {
  SC_CHECK(counter_ != nullptr, "no counter");
  N_ = counter_->num_nodes();
  SC_CHECK(F_ >= 0 && N_ > 3 * F_, "consensus requires N > 3F");
  SC_CHECK(V_ >= 2, "need at least two decision values");
  tau_ = 3 * (F_ + 2);
  SC_CHECK(counter_->modulus() % static_cast<std::uint64_t>(tau_) == 0,
           "counter modulus must be a multiple of 3(F+2)");
  SC_CHECK(static_cast<int>(proposals_.size()) == N_, "one proposal per node required");
  for (auto p : proposals_) SC_CHECK(p < V_, "proposal out of range");
  SC_CHECK(F_ <= counter_->resilience(),
           "the counter must tolerate at least the consensus resilience");

  counter_bits_ = counter_->state_bits();
  a_bits_ = phaseking::a_bits(V_);
  value_bits_ = util::ceil_log2(V_);
  total_bits_ = counter_bits_ + a_bits_ + 1 + value_bits_;
  SC_CHECK(total_bits_ <= util::BitVec::kCapacityBits, "state too wide");
  pk_ = phaseking::Params{N_, F_, V_};
  pk_.validate();
}

std::optional<std::uint64_t> RepeatedConsensus::stabilisation_bound() const noexcept {
  // Decisions are reliable after the counter stabilises plus at most one
  // partial and one full phase-king window.
  const auto b = counter_->stabilisation_bound();
  if (!b) return std::nullopt;
  return *b + 2 * static_cast<std::uint64_t>(tau_);
}

std::string RepeatedConsensus::name() const {
  return "repeated-consensus(F=" + std::to_string(F_) + ",V=" + std::to_string(V_) + ")<" +
         counter_->name() + ">";
}

std::uint64_t RepeatedConsensus::counter_output(NodeId v, const State& s) const {
  State inner = s;
  inner.truncate(counter_bits_);
  return counter_->output(v, inner);
}

State RepeatedConsensus::transition(NodeId v, std::span<const State> received,
                                    counting::TransitionContext& ctx) const {
  SC_ASSERT(static_cast<int>(received.size()) == N_);

  // 1. Advance the underlying counter.
  std::vector<State> counter_states(received.size());
  for (std::size_t u = 0; u < received.size(); ++u) {
    counter_states[u] = received[u];
    counter_states[u].truncate(counter_bits_);
  }
  const State counter_next = counter_->transition(v, counter_states, ctx);

  // 2. The instruction index comes from the node's *own* counter value --
  // after stabilisation all correct nodes agree on it.
  const std::uint64_t R =
      counter_->output(v, counter_states[static_cast<std::size_t>(v)]) %
      static_cast<std::uint64_t>(tau_);

  // 3. The phase king in value mode. R == 0 is the *loading* round: the node
  // re-proposes its input (so the proposal is broadcast before instructions
  // consume it); rounds R = 1..tau-1 execute I_R. King 0's triple is
  // truncated, but kings 1..F+2-1 all have complete triples inside the
  // window and at most F of them are faulty, so Lemma 4 still applies.
  phaseking::Registers next{
      phaseking::decode_a(received[static_cast<std::size_t>(v)].get_bits(counter_bits_, a_bits_),
                          V_),
      received[static_cast<std::size_t>(v)].get_bit(counter_bits_ + a_bits_)};
  if (R == 0) {
    next.a = proposals_[static_cast<std::size_t>(v)];
    next.d = true;
  } else {
    std::vector<std::uint64_t> received_a(received.size());
    for (std::size_t u = 0; u < received.size(); ++u) {
      received_a[u] = phaseking::decode_a(received[u].get_bits(counter_bits_, a_bits_), V_);
    }
    next = phaseking::step(pk_, static_cast<int>(R), v, next, received_a,
                           phaseking::StepMode::kValue);
  }

  // 4. Latch the decision at the end of a window.
  std::uint64_t decision =
      received[static_cast<std::size_t>(v)].get_bits(counter_bits_ + a_bits_ + 1, value_bits_) % V_;
  if (R == static_cast<std::uint64_t>(tau_) - 1 && next.a != phaseking::kInfinity) {
    decision = next.a % V_;
  }

  State s = counter_next;
  s.truncate(counter_bits_);
  s.set_bits(counter_bits_, a_bits_, phaseking::encode_a(next.a, V_));
  s.set_bit(counter_bits_ + a_bits_, next.d);
  s.set_bits(counter_bits_ + a_bits_ + 1, value_bits_, decision);
  return s;
}

std::uint64_t RepeatedConsensus::output(NodeId /*v*/, const State& s) const {
  return s.get_bits(counter_bits_ + a_bits_ + 1, value_bits_) % V_;
}

State RepeatedConsensus::canonicalize(const State& raw) const {
  State inner = raw;
  inner.truncate(counter_bits_);
  State s = counter_->canonicalize(inner);
  const std::uint64_t a_pat = raw.get_bits(counter_bits_, a_bits_);
  s.set_bits(counter_bits_, a_bits_,
             phaseking::encode_a(phaseking::decode_a(a_pat, V_), V_));
  s.set_bit(counter_bits_ + a_bits_, raw.get_bit(counter_bits_ + a_bits_));
  s.set_bits(counter_bits_ + a_bits_ + 1, value_bits_,
             raw.get_bits(counter_bits_ + a_bits_ + 1, value_bits_) % V_);
  return s;
}

}  // namespace synccount::apps
