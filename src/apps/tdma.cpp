#include "apps/tdma.hpp"

#include "util/check.hpp"

namespace synccount::apps {

TdmaAudit audit_tdma(const TdmaSchedule& schedule,
                     const std::vector<std::vector<std::uint64_t>>& outputs,
                     const std::vector<int>& owners, std::uint64_t from_round) {
  SC_CHECK(schedule.num_slots >= 1, "need at least one slot");
  TdmaAudit audit;
  for (std::uint64_t r = from_round; r < outputs.size(); ++r) {
    SC_CHECK(outputs[r].size() == owners.size(), "output row size mismatch");
    int transmitting = 0;
    for (std::size_t j = 0; j < owners.size(); ++j) {
      if (schedule.may_transmit(owners[j], outputs[r][j])) ++transmitting;
    }
    ++audit.rounds;
    if (transmitting == 0) {
      ++audit.idle_rounds;
    } else if (transmitting == 1) {
      ++audit.exclusive_rounds;
    } else {
      ++audit.collisions;
    }
  }
  return audit;
}

}  // namespace synccount::apps
