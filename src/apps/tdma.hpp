// Fault-tolerant time-division multiple access on top of a synchronous
// counter (the paper's motivating application: "mutual exclusion and time
// division multiple access in a fault-tolerant manner").
//
// Slot assignment is a pure function of the agreed counter value, so once
// the counter has stabilised, correct subsystems never collide. The helpers
// below encapsulate the slot arithmetic and frame auditing used by the
// tdma_mutex example and the application tests.
#pragma once

#include <cstdint>
#include <vector>

namespace synccount::apps {

struct TdmaSchedule {
  int num_slots = 0;

  // The slot that owns the bus when the counter reads `counter_value`.
  int slot_of(std::uint64_t counter_value) const noexcept {
    return static_cast<int>(counter_value % static_cast<std::uint64_t>(num_slots));
  }

  // True if subsystem `owner` may transmit under `counter_value`.
  bool may_transmit(int owner, std::uint64_t counter_value) const noexcept {
    return slot_of(counter_value) == owner;
  }
};

// Audit of one execution: per round, how many of the given subsystems
// transmitted simultaneously based on their (possibly disagreeing) local
// counter values.
struct TdmaAudit {
  std::uint64_t rounds = 0;
  std::uint64_t collisions = 0;        // rounds with >= 2 transmitters
  std::uint64_t idle_rounds = 0;       // rounds with 0 transmitters
  std::uint64_t exclusive_rounds = 0;  // rounds with exactly 1 transmitter
};

// outputs[r][j] = counter output of subsystem `owners[j]` at round r.
TdmaAudit audit_tdma(const TdmaSchedule& schedule,
                     const std::vector<std::vector<std::uint64_t>>& outputs,
                     const std::vector<int>& owners, std::uint64_t from_round);

}  // namespace synccount::apps
