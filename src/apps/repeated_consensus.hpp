// Counting => consensus (paper, Section 1: "given a synchronous counting
// algorithm one can design a binary consensus algorithm and vice versa").
//
// A repeated-consensus service on top of any self-stabilising counter whose
// modulus is a multiple of tau = 3(F+2): once the counter has stabilised,
// every window of counter values [0, tau) drives one classic phase-king
// execution (Table 2 instructions in *value* mode, i.e. without the
// counting increments) over the nodes' proposals. Each completed window
// yields a decision satisfying
//   * agreement: all correct nodes decide the same value, and
//   * validity:  if all correct proposals are equal, that value is decided,
// for up to F < N/3 Byzantine nodes. Before stabilisation decisions are
// unreliable -- self-stabilisation carries over: after the counter's
// stabilisation time plus at most 2*tau rounds, every decision is correct.
//
// State layout: [counter | a | d | decision]; the service is itself a
// broadcast algorithm, so it composes with the simulator and adversaries.
#pragma once

#include "counting/algorithm.hpp"
#include "phaseking/phase_king.hpp"

namespace synccount::apps {

using counting::AlgorithmPtr;
using counting::NodeId;
using counting::State;

class RepeatedConsensus final : public counting::CountingAlgorithm {
 public:
  // `counter`: stabilising counter on the same N nodes; its modulus must be
  // a multiple of tau = 3(F+2). `values`: decision domain size V >= 2.
  // `proposals`: proposal in [V] per node (re-proposed every window).
  RepeatedConsensus(AlgorithmPtr counter, int F, std::uint64_t values,
                    std::vector<std::uint64_t> proposals);

  int num_nodes() const noexcept override { return N_; }
  int resilience() const noexcept override { return F_; }
  // The "counter" modulus of the service is the decision domain.
  std::uint64_t modulus() const noexcept override { return V_; }
  int state_bits() const noexcept override { return total_bits_; }
  std::optional<std::uint64_t> stabilisation_bound() const noexcept override;
  bool deterministic() const noexcept override { return counter_->deterministic(); }
  std::string name() const override;

  State transition(NodeId v, std::span<const State> received,
                   counting::TransitionContext& ctx) const override;
  // The last completed decision of node v.
  std::uint64_t output(NodeId v, const State& s) const override;
  State canonicalize(const State& raw) const override;

  int tau() const noexcept { return tau_; }
  // The counter value of node v embedded in its state (for tests).
  std::uint64_t counter_output(NodeId v, const State& s) const;

 private:
  AlgorithmPtr counter_;
  int F_;
  std::uint64_t V_;
  std::vector<std::uint64_t> proposals_;
  int N_;
  int tau_;
  int counter_bits_;
  int a_bits_;
  int value_bits_;
  int total_bits_;
  phaseking::Params pk_;
};

}  // namespace synccount::apps
