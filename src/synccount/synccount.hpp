// Umbrella header for the synccount library: a reproduction of
// "Towards Optimal Synchronous Counting" (Lenzen, Rybicki, Suomela;
// PODC 2015, arXiv:1503.06702).
//
// Quick start:
//
//   #include "synccount/synccount.hpp"
//   using namespace synccount;
//
//   // Build a 7-resilient 36-node counter (Figure 2) counting modulo 10.
//   auto algo = boosting::build_plan(boosting::plan_practical(7, 10));
//
//   // Run it with 7 Byzantine nodes under a vote-splitting adversary.
//   sim::RunConfig cfg;
//   cfg.algo = algo;
//   cfg.faulty = sim::faults_block_concentrated(algo->num_nodes() / 12, 12, 3, 7);
//   cfg.max_rounds = *algo->stabilisation_bound() + 500;
//   auto adv = sim::make_adversary("split");
//   const sim::RunResult res = sim::run_execution(cfg, *adv);
#pragma once

#include "apps/repeated_consensus.hpp"    // IWYU pragma: export
#include "apps/tdma.hpp"                  // IWYU pragma: export
#include "boosting/boosted_counter.hpp"   // IWYU pragma: export
#include "boosting/leader_split_adversary.hpp"  // IWYU pragma: export
#include "boosting/planner.hpp"           // IWYU pragma: export
#include "counting/algorithm.hpp"         // IWYU pragma: export
#include "counting/randomized.hpp"        // IWYU pragma: export
#include "counting/table_algorithm.hpp"   // IWYU pragma: export
#include "counting/table_io.hpp"          // IWYU pragma: export
#include "counting/trivial.hpp"           // IWYU pragma: export
#include "phaseking/consensus.hpp"        // IWYU pragma: export
#include "phaseking/phase_king.hpp"       // IWYU pragma: export
#include "pulling/pulling_counter.hpp"    // IWYU pragma: export
#include "sat/dimacs.hpp"                 // IWYU pragma: export
#include "sat/solver.hpp"                 // IWYU pragma: export
#include "sim/adversaries.hpp"            // IWYU pragma: export
#include "sim/checker.hpp"                // IWYU pragma: export
#include "sim/engine.hpp"                 // IWYU pragma: export
#include "sim/faults.hpp"                 // IWYU pragma: export
#include "sim/sink.hpp"                   // IWYU pragma: export
#include "sim/runner.hpp"                 // IWYU pragma: export
#include "synthesis/encoder.hpp"          // IWYU pragma: export
#include "synthesis/game_adversary.hpp"   // IWYU pragma: export
#include "synthesis/known_tables.hpp"     // IWYU pragma: export
#include "synthesis/synthesize.hpp"       // IWYU pragma: export
#include "synthesis/verifier.hpp"         // IWYU pragma: export
#include "util/cli.hpp"                   // IWYU pragma: export
#include "util/stats.hpp"                 // IWYU pragma: export
#include "util/table.hpp"                 // IWYU pragma: export
