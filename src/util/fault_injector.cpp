#include "util/fault_injector.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <thread>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace synccount::util {

namespace {

std::uint64_t parse_u64(const std::string& s, const std::string& what) {
  SC_CHECK(!s.empty(), "fault spec: empty " + what);
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  SC_CHECK(end != nullptr && *end == '\0', "fault spec: bad " + what + ": " + s);
  return static_cast<std::uint64_t>(v);
}

}  // namespace

FaultInjector& FaultInjector::instance() {
  // synccount-lint: allow(global-state) -- intentionally process-global: the
  // injector must survive from first probe to the killing fault; configured
  // once under the magic-static lock, then only probed.
  static FaultInjector* injector = [] {
    auto* inj = new FaultInjector();
    // synccount-lint: allow(nondet) -- SYNCCOUNT_FAULTS is the documented
    // fault-injection interface; faults fire deterministically per spec+seed.
    const char* spec = std::getenv("SYNCCOUNT_FAULTS");
    // synccount-lint: allow(nondet) -- same documented interface, seed knob.
    const char* seed = std::getenv("SYNCCOUNT_FAULTS_SEED");
    if (spec != nullptr && *spec != '\0') {
      inj->configure(spec, seed != nullptr ? parse_u64(seed, "seed") : 0xFA017);
    }
    return inj;
  }();
  return *injector;
}

void FaultInjector::configure(const std::string& spec, std::uint64_t seed) {
  std::vector<Rule> rules;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;

    const std::size_t eq = entry.find('=');
    SC_CHECK(eq != std::string::npos && eq > 0,
             "fault spec: want site=op@N, got: " + entry);
    Rule rule;
    rule.site = entry.substr(0, eq);
    std::string op = entry.substr(eq + 1);
    const std::size_t at = op.find('@');
    if (at != std::string::npos) {
      rule.at = parse_u64(op.substr(at + 1), "hit count");
      SC_CHECK(rule.at >= 1, "fault spec: hit count must be >= 1: " + entry);
      op = op.substr(0, at);
    }
    if (op == "kill") {
      rule.op = Op::kKill;
    } else if (op == "drop") {
      rule.op = Op::kDrop;
    } else if (op == "torn") {
      rule.op = Op::kTorn;
    } else if (op.rfind("stall:", 0) == 0) {
      rule.op = Op::kStall;
      rule.stall_ms = parse_u64(op.substr(6), "stall duration");
    } else {
      SC_CHECK(false, "fault spec: unknown op '" + op + "' in: " + entry +
                          " (want kill|drop|torn|stall:MS)");
    }
    rules.push_back(std::move(rule));
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  rules_ = std::move(rules);
  seed_ = seed;
}

FaultInjector::Rule* FaultInjector::match(std::string_view site, Op op) {
  // Caller holds mutex_. Every rule on this site of this kind counts the
  // probe; the first one reaching its trigger count fires (once).
  Rule* fired = nullptr;
  for (Rule& rule : rules_) {
    if (rule.op != op || rule.site != site) continue;
    ++rule.hits;
    if (!rule.fired && rule.hits == rule.at && fired == nullptr) {
      rule.fired = true;
      fired = &rule;
    }
  }
  return fired;
}

bool FaultInjector::should_drop(std::string_view site) {
  if (rules_.empty()) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  return match(site, Op::kDrop) != nullptr;
}

void FaultInjector::probe(std::string_view site) {
  if (rules_.empty()) return;
  std::uint64_t stall_ms = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (match(site, Op::kKill) != nullptr) die();
    if (const Rule* rule = match(site, Op::kStall)) stall_ms = rule->stall_ms;
  }
  // Sleep outside the lock: a stalled thread must not block other probes.
  if (stall_ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
}

FaultInjector::WriteFault FaultInjector::on_write(std::string_view site,
                                                  std::size_t size) {
  WriteFault fault;
  if (rules_.empty()) return fault;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (match(site, Op::kTorn) != nullptr) {
    fault.torn = true;
    // Seeded, site-dependent cut point: deterministic per fault plan, but
    // not always the same "clean prefix" degenerate case.
    std::uint64_t site_hash = 0;
    for (const char c : site) {
      site_hash = hash_combine(site_hash, static_cast<unsigned char>(c));
    }
    Rng rng(hash_combine(seed_, site_hash));
    fault.keep_bytes = size == 0 ? 0 : rng.next_below(static_cast<std::uint64_t>(size));
  }
  return fault;
}

void FaultInjector::die() { ::_exit(137); }

}  // namespace synccount::util
