#include "util/math.hpp"

#include <bit>
#include <numeric>

#include "util/check.hpp"

namespace synccount::util {

int ceil_log2(std::uint64_t n) noexcept {
  if (n <= 1) return 0;
  return 64 - std::countl_zero(n - 1);
}

int floor_log2(std::uint64_t n) noexcept {
  if (n == 0) return -1;
  return 63 - std::countl_zero(n);
}

std::optional<std::uint64_t> checked_pow(std::uint64_t base, unsigned exp) noexcept {
  std::uint64_t result = 1;
  std::uint64_t b = base;
  unsigned e = exp;
  while (e > 0) {
    if (e & 1U) {
      auto r = checked_mul(result, b);
      if (!r) return std::nullopt;
      result = *r;
    }
    e >>= 1U;
    if (e == 0) break;
    auto sq = checked_mul(b, b);
    if (!sq) return std::nullopt;
    b = *sq;
  }
  return result;
}

std::uint64_t ipow(std::uint64_t base, unsigned exp) {
  auto r = checked_pow(base, exp);
  SC_CHECK(r.has_value(), "integer power overflows uint64");
  return *r;
}

std::optional<std::uint64_t> checked_mul(std::uint64_t a, std::uint64_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  if (a > ~0ULL / b) return std::nullopt;
  return a * b;
}

std::optional<std::uint64_t> checked_add(std::uint64_t a, std::uint64_t b) noexcept {
  if (a > ~0ULL - b) return std::nullopt;
  return a + b;
}

std::uint64_t add_mod(std::uint64_t a, std::uint64_t b, std::uint64_t m) noexcept {
  a %= m;
  b %= m;
  // a, b < m <= 2^64 - 1; a + b may wrap only if m > 2^63, handle via subtraction.
  if (a >= m - b) return a - (m - b);
  return a + b;
}

std::uint64_t mod_i64(std::int64_t a, std::uint64_t m) noexcept {
  const auto sm = static_cast<std::int64_t>(m);
  std::int64_t r = a % sm;
  if (r < 0) r += sm;
  return static_cast<std::uint64_t>(r);
}

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return a / b + (a % b != 0 ? 1 : 0);
}

std::uint64_t lcm_checked(std::uint64_t a, std::uint64_t b) {
  SC_CHECK(a > 0 && b > 0, "lcm of zero");
  const std::uint64_t g = std::gcd(a, b);
  auto r = checked_mul(a / g, b);
  SC_CHECK(r.has_value(), "lcm overflows uint64");
  return *r;
}

}  // namespace synccount::util
