// Deterministic, splittable pseudo-random number generation.
//
// All randomness in the library flows through Rng so that every execution
// (tests, benches, examples) is reproducible from a single 64-bit seed.
// The generator is xoshiro256** seeded via SplitMix64; `split()` derives an
// independent child stream, which is how per-node sampling seeds are created
// for the pseudo-random counters of Section 5 (Corollary 5).
#pragma once

#include <array>
#include <cstdint>

namespace synccount::util {

// SplitMix64 step: used for seeding and for cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

// Stateless 64-bit mix of two values (for deriving child seeds).
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept;

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  // Uniform 64-bit value. Inline: the batched runners draw once per lane per
  // round, and an out-of-line call here forces the generator state through
  // memory on every draw.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform value in [0, bound); bound > 0. Uses rejection sampling, so the
  // distribution is exactly uniform.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  // Uniform value in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  // Uniform double in [0, 1).
  double next_double() noexcept;

  // Bernoulli trial with success probability p.
  bool next_bool(double p = 0.5) noexcept;

  // Derive an independent child generator (deterministic function of the
  // current state; advances this generator).
  Rng split() noexcept;

  // std::uniform_random_bit_generator interface so the Rng can be used with
  // <algorithm> shuffles.
  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next_u64(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_;
};

}  // namespace synccount::util
