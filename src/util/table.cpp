#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace synccount::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(width[c])) << cell;
      os << (c + 1 < headers_.size() ? " | " : " |");
    }
    os << '\n';
  };
  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string fmt_u64(std::uint64_t v) {
  return std::to_string(v);
}

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_bool(bool v) { return v ? "yes" : "no"; }

}  // namespace synccount::util
