#include "util/kll_sketch.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace synccount::util {

KllSketch::KllSketch(std::size_t k) : k_(k) {
  SC_CHECK(k_ >= 8, "KllSketch needs k >= 8");
  levels_.emplace_back();
  parities_.push_back(0);
}

void KllSketch::add(double x) {
  levels_[0].push_back(x);
  ++count_;
  compact_while_over_capacity();
}

void KllSketch::merge(const KllSketch& other) {
  SC_CHECK(k_ == other.k_, "cannot merge KllSketch instances with different k");
  if (other.empty()) return;
  if (empty()) {
    // Copy, not concatenate: a fold seeded from a default-constructed sketch
    // must reproduce the first partial exactly (parities included).
    *this = other;
    return;
  }
  while (levels_.size() < other.levels_.size()) {
    levels_.emplace_back();
    parities_.push_back(0);
  }
  for (std::size_t l = 0; l < other.levels_.size(); ++l) {
    levels_[l].insert(levels_[l].end(), other.levels_[l].begin(), other.levels_[l].end());
  }
  count_ += other.count_;
  error_weight_ += other.error_weight_;
  compact_while_over_capacity();
}

std::size_t KllSketch::retained() const noexcept {
  std::size_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

std::uint64_t KllSketch::max_item_weight() const noexcept {
  return std::uint64_t{1} << (levels_.size() - 1);
}

void KllSketch::compact_while_over_capacity() {
  // Lazy compaction: tolerate any level over its capacity until the TOTAL
  // exceeds the budget, then compact the lowest over-full level (pigeonhole:
  // one must exist). Equal per-level capacity k is the worst-case-optimal
  // shape for a deterministic sketch -- the error sum is sum(1 / cap_l), the
  // memory is sum(cap_l), and both are extremised together at equal caps.
  while (retained() > k_ * levels_.size()) {
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      if (levels_[l].size() > k_) {
        compact_level(l);
        break;
      }
    }
  }
}

void KllSketch::compact_level(std::size_t level) {
  if (level + 1 == levels_.size()) {
    levels_.emplace_back();
    parities_.push_back(0);
  }
  std::vector<double>& buf = levels_[level];
  std::sort(buf.begin(), buf.end());
  // An odd buffer keeps its largest item at this level (deterministic, adds
  // no error); the even-sized prefix is halved upward. The alternating
  // parity picks even/odd survivors on alternate compactions so consecutive
  // rank perturbations point in opposite directions.
  std::size_t m = buf.size();
  double held = 0.0;
  const bool hold = (m % 2) != 0;
  if (hold) {
    held = buf.back();
    --m;
  }
  const std::size_t offset = parities_[level] & 1;
  parities_[level] ^= 1;
  for (std::size_t i = offset; i < m; i += 2) {
    levels_[level + 1].push_back(buf[i]);
  }
  buf.clear();
  if (hold) buf.push_back(held);
  // One compaction of weight-2^l items perturbs any rank estimate by at
  // most 2^l; the tracked bound sums exactly that.
  error_weight_ += std::uint64_t{1} << level;
}

double KllSketch::quantile(double p) const {
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  p = std::clamp(p, 0.0, 1.0);
  // Deterministic weighted selection: assemble (value, weight) pairs in
  // storage order, stable-sort by value (ties keep assembly order), walk the
  // cumulative weight to the target rank.
  std::vector<std::pair<double, std::uint64_t>> items;
  items.reserve(retained());
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const std::uint64_t w = std::uint64_t{1} << l;
    for (const double v : levels_[l]) items.emplace_back(v, w);
  }
  std::stable_sort(items.begin(), items.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  const double target = p * static_cast<double>(count_ - 1);
  std::uint64_t cum = 0;
  for (const auto& [value, weight] : items) {
    cum += weight;
    if (static_cast<double>(cum - 1) >= target) return value;
  }
  return items.back().first;
}

double KllSketch::rank_error_bound() const noexcept {
  if (count_ == 0) return 0.0;
  return static_cast<double>(error_weight_) / static_cast<double>(count_);
}

KllSketch KllSketch::restore(std::size_t k, std::uint64_t count,
                             std::uint64_t error_weight,
                             std::vector<std::vector<double>> levels,
                             std::vector<std::uint8_t> parities) {
  KllSketch s(k);
  SC_CHECK(!levels.empty() && levels.size() == parities.size(),
           "KllSketch state needs one parity per level");
  std::uint64_t weighted = 0;
  for (std::size_t l = 0; l < levels.size(); ++l) {
    weighted += static_cast<std::uint64_t>(levels[l].size()) << l;
    SC_CHECK(parities[l] <= 1, "KllSketch parity must be 0 or 1");
  }
  SC_CHECK(weighted == count, "KllSketch level weights disagree with count");
  s.count_ = count;
  s.error_weight_ = error_weight;
  s.levels_ = std::move(levels);
  s.parities_ = std::move(parities);
  return s;
}

}  // namespace synccount::util
