// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip flavour) for the line-level
// integrity checks of the sweep wire formats.
//
// Every shard-partial / checkpoint line carries an 8-hex-digit CRC suffix
// (sim/experiment_io.hpp) so that a torn write, a bit flip on a copied file,
// or trailing garbage is detected at read time with a file + line diagnostic
// instead of being parsed best-effort into an aggregate.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace synccount::util {

// CRC-32 of `data` (reflected 0xEDB88320 polynomial, init/final 0xFFFFFFFF;
// matches zlib's crc32()).
std::uint32_t crc32(std::string_view data) noexcept;

// The 8-char lowercase hex rendering used by the wire formats.
std::string crc32_hex(std::string_view data);

}  // namespace synccount::util
