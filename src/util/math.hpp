// Small integer-math helpers used throughout the planner and the
// constructions: ceilings of logarithms, checked powers, and modular
// arithmetic on unsigned 64-bit counters.
#pragma once

#include <cstdint>
#include <optional>

namespace synccount::util {

// Number of bits needed to store values of [0, n), i.e. ceil(log2(n)).
// ceil_log2(0) == ceil_log2(1) == 0.
int ceil_log2(std::uint64_t n) noexcept;

// floor(log2(n)) for n >= 1; returns -1 for n == 0.
int floor_log2(std::uint64_t n) noexcept;

// base^exp if it fits into uint64, std::nullopt on overflow.
std::optional<std::uint64_t> checked_pow(std::uint64_t base, unsigned exp) noexcept;

// base^exp; throws std::invalid_argument on overflow.
std::uint64_t ipow(std::uint64_t base, unsigned exp);

// a*b if it fits, nullopt on overflow.
std::optional<std::uint64_t> checked_mul(std::uint64_t a, std::uint64_t b) noexcept;

// a+b if it fits, nullopt on overflow.
std::optional<std::uint64_t> checked_add(std::uint64_t a, std::uint64_t b) noexcept;

// (a + b) mod m for m > 0.
std::uint64_t add_mod(std::uint64_t a, std::uint64_t b, std::uint64_t m) noexcept;

// Positive remainder of a mod m for m > 0 (a may be "negative" via wraparound
// semantics of signed input).
std::uint64_t mod_i64(std::int64_t a, std::uint64_t m) noexcept;

// Ceiling division for non-negative integers, b > 0.
std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept;

// Least common multiple with overflow check; throws on overflow.
std::uint64_t lcm_checked(std::uint64_t a, std::uint64_t b);

}  // namespace synccount::util
