#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/json.hpp"

namespace synccount::util {

namespace {
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}
}  // namespace

void StreamingStats::add(double x) {
  if (samples_.empty()) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  samples_.push_back(x);
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(samples_.size());
  m2_ += delta * (x - mean_);
  sorted_ = false;
}

void StreamingStats::merge(const StreamingStats& other) {
  // Replay rather than Chan's parallel formula: bit-identical to having
  // add()ed other's samples directly, which the determinism contract needs.
  // By index with a saved size so that self-merge (doubling) stays defined
  // while add() grows samples_.
  const std::size_t n = other.samples_.size();
  for (std::size_t i = 0; i < n; ++i) add(other.samples_[i]);
}

double StreamingStats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(samples_.size() - 1));
}

double StreamingStats::quantile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    sorted_samples_ = samples_;
    std::sort(sorted_samples_.begin(), sorted_samples_.end());
    sorted_ = true;
  }
  p = std::clamp(p, 0.0, 1.0);
  return percentile(sorted_samples_, p);
}

Summary StreamingStats::summary() const {
  Summary s;
  s.count = samples_.size();
  if (samples_.empty()) return s;
  s.mean = mean_;
  s.stddev = stddev();
  s.min = min_;
  s.max = max_;
  s.median = quantile(0.5);
  s.p90 = quantile(0.9);
  s.p99 = quantile(0.99);
  return s;
}

std::string StreamingStats::to_string() const { return summary().to_string(); }

Json to_json(const StreamingStats& stats) {
  Json samples = Json::array();
  for (const double x : stats.samples()) samples.push_back(Json::number(x));
  Json j = Json::object();
  j.set("samples", std::move(samples));
  return j;
}

StreamingStats streaming_stats_from_json(const Json& j) {
  StreamingStats out;
  const Json& samples = j.at("samples");
  for (std::size_t i = 0; i < samples.size(); ++i) out.add(samples.at(i).as_double());
  return out;
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  double sq = 0.0;
  for (double v : samples) sq += (v - s.mean) * (v - s.mean);
  s.stddev = samples.size() > 1 ? std::sqrt(sq / static_cast<double>(samples.size() - 1)) : 0.0;
  s.min = samples.front();
  s.max = samples.back();
  s.median = percentile(samples, 0.5);
  s.p90 = percentile(samples, 0.9);
  s.p99 = percentile(samples, 0.99);
  return s;
}

Summary summarize_u64(const std::vector<std::uint64_t>& samples) {
  std::vector<double> d(samples.begin(), samples.end());
  return summarize(std::move(d));
}

double regression_slope(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < n; ++i) {
    num += (x[i] - mx) * (y[i] - my);
    den += (x[i] - mx) * (x[i] - mx);
  }
  return den == 0.0 ? 0.0 : num / den;
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os << "n=" << count << " mean=" << mean << " sd=" << stddev << " min=" << min
     << " med=" << median << " p90=" << p90 << " max=" << max;
  return os.str();
}

}  // namespace synccount::util
