#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/check.hpp"
#include "util/json.hpp"

namespace synccount::util {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return kNaN;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

StreamingStats::StreamingStats(StatsMode mode, std::size_t sketch_k) : mode_(mode) {
  if (mode_ == StatsMode::kSketch) sketch_.emplace(sketch_k);
}

void StreamingStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (mode_ == StatsMode::kExact) {
    samples_.push_back(x);
  } else {
    sketch_->add(x);
  }
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    // A fresh accumulator adopts the other wholesale (mode included): fold
    // seeds are default-constructed, and for kExact a copy is bit-identical
    // to the replay below anyway.
    *this = other;
    return;
  }
  SC_CHECK(mode_ == other.mode_,
           "cannot merge exact and sketch StreamingStats accumulators");
  if (mode_ == StatsMode::kExact) {
    // Replay rather than Chan's parallel formula: bit-identical to having
    // add()ed other's samples directly, which the determinism contract
    // needs. By index with a saved size so that self-merge (doubling) stays
    // defined while add() grows samples_.
    const std::size_t n = other.samples_.size();
    for (std::size_t i = 0; i < n; ++i) add(other.samples_[i]);
    return;
  }
  // Sketch mode has no samples to replay; Chan's parallel update is still a
  // deterministic function of the two states, so left-folds reproduce.
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * (n2 / (n1 + n2));
  m2_ += other.m2_ + delta * delta * (n1 * n2 / (n1 + n2));
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sketch_->merge(*other.sketch_);
}

double StreamingStats::stddev() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

double StreamingStats::quantile(double p) const {
  if (count_ == 0) return kNaN;
  p = std::clamp(p, 0.0, 1.0);
  if (mode_ == StatsMode::kSketch) return sketch_->quantile(p);
  // Sort a local copy: O(n log n) per call, but pure const -- concurrent
  // summaries over a shared accumulator must not race on a lazy cache.
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  return percentile(sorted, p);
}

const std::vector<double>& StreamingStats::samples() const {
  SC_CHECK(mode_ == StatsMode::kExact,
           "sketch-mode StreamingStats does not retain samples");
  return samples_;
}

const KllSketch& StreamingStats::sketch() const {
  SC_CHECK(mode_ == StatsMode::kSketch, "exact-mode StreamingStats has no sketch");
  return *sketch_;
}

Summary StreamingStats::summary() const {
  Summary s;
  s.count = count_;
  if (count_ == 0) {
    s.mean = s.stddev = s.min = s.max = s.median = s.p90 = s.p99 = kNaN;
    return s;
  }
  s.mean = mean_;
  s.stddev = stddev();
  s.min = min_;
  s.max = max_;
  if (mode_ == StatsMode::kSketch) {
    s.median = sketch_->quantile(0.5);
    s.p90 = sketch_->quantile(0.9);
    s.p99 = sketch_->quantile(0.99);
    return s;
  }
  // One sort serves all three quantiles.
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  s.median = percentile(sorted, 0.5);
  s.p90 = percentile(sorted, 0.9);
  s.p99 = percentile(sorted, 0.99);
  return s;
}

std::string StreamingStats::to_string() const { return summary().to_string(); }

Json to_json(const StreamingStats& stats) {
  Json j = Json::object();
  if (stats.mode() == StatsMode::kExact) {
    // Unchanged v3 shape: exact-mode wire bytes stay identical to pre-sketch
    // builds.
    Json samples = Json::array();
    for (const double x : stats.samples()) samples.push_back(Json::number(x));
    j.set("samples", std::move(samples));
    return j;
  }
  const KllSketch& sk = stats.sketch();
  j.set("mode", Json::string("sketch"));
  j.set("k", Json::number(static_cast<std::uint64_t>(sk.k())));
  j.set("count", Json::number(static_cast<std::uint64_t>(stats.count())));
  j.set("mean", Json::number(stats.mean_));
  j.set("m2", Json::number(stats.m2_));
  j.set("min", Json::number(stats.min_));
  j.set("max", Json::number(stats.max_));
  j.set("error_weight", Json::number(sk.rank_error_weight()));
  Json parities = Json::array();
  for (const std::uint8_t p : sk.parities()) {
    parities.push_back(Json::number(static_cast<std::int64_t>(p)));
  }
  j.set("parities", std::move(parities));
  Json levels = Json::array();
  for (const auto& level : sk.levels()) {
    Json arr = Json::array();
    for (const double v : level) arr.push_back(Json::number(v));
    levels.push_back(std::move(arr));
  }
  j.set("levels", std::move(levels));
  return j;
}

StreamingStats streaming_stats_from_json(const Json& j) {
  if (const Json* mode = j.find("mode"); mode != nullptr) {
    SC_CHECK(mode->as_string() == "sketch",
             "unknown StreamingStats mode: " + mode->as_string());
    const auto k = static_cast<std::size_t>(j.at("k").as_u64());
    StreamingStats out(StatsMode::kSketch, k);
    const std::uint64_t count = j.at("count").as_u64();
    if (count == 0) return out;
    std::vector<std::vector<double>> levels;
    const Json& jlevels = j.at("levels");
    for (std::size_t l = 0; l < jlevels.size(); ++l) {
      std::vector<double> level;
      const Json& arr = jlevels.at(l);
      level.reserve(arr.size());
      for (std::size_t i = 0; i < arr.size(); ++i) level.push_back(arr.at(i).as_double());
      levels.push_back(std::move(level));
    }
    std::vector<std::uint8_t> parities;
    const Json& jparities = j.at("parities");
    for (std::size_t i = 0; i < jparities.size(); ++i) {
      parities.push_back(static_cast<std::uint8_t>(jparities.at(i).as_u64()));
    }
    // Bit-exact state transplant: Json::number preserves doubles exactly, so
    // the moments and every retained item round-trip without re-deriving
    // anything through floating-point ops.
    out.count_ = static_cast<std::size_t>(count);
    out.mean_ = j.at("mean").as_double();
    out.m2_ = j.at("m2").as_double();
    out.min_ = j.at("min").as_double();
    out.max_ = j.at("max").as_double();
    out.sketch_ = KllSketch::restore(k, count, j.at("error_weight").as_u64(),
                                     std::move(levels), std::move(parities));
    return out;
  }
  StreamingStats out;
  const Json& samples = j.at("samples");
  for (std::size_t i = 0; i < samples.size(); ++i) out.add(samples.at(i).as_double());
  return out;
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) {
    s.mean = s.stddev = s.min = s.max = s.median = s.p90 = s.p99 = kNaN;
    return s;
  }
  std::sort(samples.begin(), samples.end());
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  double sq = 0.0;
  for (double v : samples) sq += (v - s.mean) * (v - s.mean);
  s.stddev = samples.size() > 1 ? std::sqrt(sq / static_cast<double>(samples.size() - 1)) : 0.0;
  s.min = samples.front();
  s.max = samples.back();
  s.median = percentile(samples, 0.5);
  s.p90 = percentile(samples, 0.9);
  s.p99 = percentile(samples, 0.99);
  return s;
}

Summary summarize_u64(const std::vector<std::uint64_t>& samples) {
  std::vector<double> d(samples.begin(), samples.end());
  return summarize(std::move(d));
}

double regression_slope(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < n; ++i) {
    num += (x[i] - mx) * (y[i] - my);
    den += (x[i] - mx) * (x[i] - mx);
  }
  return den == 0.0 ? 0.0 : num / den;
}

std::string Summary::to_string() const {
  const auto fmt = [](double v) -> std::string {
    if (std::isnan(v)) return "n/a";
    std::ostringstream os;
    os << v;
    return os.str();
  };
  std::ostringstream os;
  os << "n=" << count << " mean=" << fmt(mean) << " sd=" << fmt(stddev)
     << " min=" << fmt(min) << " med=" << fmt(median) << " p90=" << fmt(p90)
     << " max=" << fmt(max);
  return os.str();
}

}  // namespace synccount::util
