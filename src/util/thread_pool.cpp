#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "util/check.hpp"

namespace synccount::util {

namespace {
// Which worker (if any) the current thread is; used so that submit() from
// inside a task pushes onto the calling worker's own deque.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_worker = 0;
}  // namespace

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  queues_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(Task task) {
  SC_CHECK(task != nullptr, "null task");
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    target = (tl_pool == this) ? tl_worker : next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++pending_;
    ++queued_;
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t me, Task& out) {
  // Own deque first (back = most recently pushed, cache-warm).
  {
    auto& q = *queues_[me];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  // Steal from the front of the other deques (oldest task).
  for (std::size_t d = 1; d < queues_.size(); ++d) {
    auto& q = *queues_[(me + d) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t me) {
  tl_pool = this;
  tl_worker = me;
  for (;;) {
    Task task;
    if (try_pop(me, task)) {
      {
        std::lock_guard<std::mutex> lock(idle_mu_);
        --queued_;
      }
      task();
      std::lock_guard<std::mutex> lock(idle_mu_);
      if (--pending_ == 0) idle_cv_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mu_);
    work_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
    if (stop_) return;
  }
}

void ThreadPool::wait_idle() {
  SC_REQUIRE(tl_pool != this, "wait_idle() called from a worker thread");
  std::unique_lock<std::mutex> lock(idle_mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (size() == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // One task per index: cells vary wildly in cost (different horizons and
  // adversaries), so fine-grained tasks plus stealing beat static chunking.
  std::atomic<std::size_t> done{0};
  for (std::size_t i = 0; i < count; ++i) {
    submit([&fn, &done, i] {
      fn(i);
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  wait_idle();
  SC_REQUIRE(done.load() == count, "parallel_for lost tasks");
}

}  // namespace synccount::util
