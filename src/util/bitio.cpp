#include "util/bitio.hpp"

#include <sstream>

namespace synccount::util {

std::string BitVec::to_hex(int bits) const {
  std::ostringstream os;
  os << std::hex;
  const int nibbles = (bits + 3) / 4;
  for (int i = nibbles - 1; i >= 0; --i) {
    os << get_bits(i * 4, (i * 4 + 4 <= kCapacityBits) ? 4 : 4);
  }
  std::string s = os.str();
  return s.empty() ? "0" : s;
}

}  // namespace synccount::util
