#include "util/bitio.hpp"

#include <cstring>
#include <sstream>

namespace synccount::util {

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

std::uint64_t get_varint(std::string_view in, std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    SC_CHECK(pos < in.size(), "truncated varint");
    SC_CHECK(shift < 64, "overlong varint");
    const auto byte = static_cast<std::uint8_t>(in[pos++]);
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

void put_u32le(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32le(std::string_view in, std::size_t& pos) {
  SC_CHECK(pos + 4 <= in.size(), "truncated u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(in[pos + i])) << (8 * i);
  }
  pos += 4;
  return v;
}

void put_f64le(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
}

double get_f64le(std::string_view in, std::size_t& pos) {
  SC_CHECK(pos + 8 <= in.size(), "truncated f64");
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(in[pos + i])) << (8 * i);
  }
  pos += 8;
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string BitVec::to_hex(int bits) const {
  std::ostringstream os;
  os << std::hex;
  const int nibbles = (bits + 3) / 4;
  for (int i = nibbles - 1; i >= 0; --i) {
    os << get_bits(i * 4, (i * 4 + 4 <= kCapacityBits) ? 4 : 4);
  }
  std::string s = os.str();
  return s.empty() ? "0" : s;
}

}  // namespace synccount::util
