// Bounded retry with exponential backoff + deterministic jitter.
//
// Every network edge of the sweep service (client connect, worker lease,
// heartbeat, submit) retries through a Backoff so a daemon restart or a
// transient socket error is absorbed instead of failing the fleet. The
// jitter draws from a seeded util::Rng, so a retry schedule is reproducible
// in tests and two workers seeded differently never thundering-herd in
// lockstep.
#pragma once

#include <chrono>
#include <cstdint>

#include "util/rng.hpp"

namespace synccount::util {

struct BackoffPolicy {
  std::chrono::milliseconds initial{25};  // first retry delay (pre-jitter)
  std::chrono::milliseconds cap{1000};    // delays never exceed this
  double multiplier = 2.0;                // growth per attempt
  double jitter = 0.5;                    // delay is scaled by [1-j, 1+j)
  int max_attempts = 8;                   // 0 = retry forever
};

class Backoff {
 public:
  explicit Backoff(BackoffPolicy policy = {}, std::uint64_t seed = 0x600FF) noexcept
      : policy_(policy), rng_(seed) {}

  // True while another attempt is allowed (attempt 0 is the initial try, so
  // max_attempts = 3 means one try plus two retries). attempt_ saturates at
  // INT_MAX, so the comparison avoids attempt_ + 1 (which would overflow in
  // a forever-retrying loop).
  bool should_retry() const noexcept {
    return policy_.max_attempts == 0 || attempt_ < policy_.max_attempts - 1;
  }

  int attempt() const noexcept { return attempt_; }

  // The jittered delay to sleep before the next attempt; advances the
  // schedule. Call only when should_retry() was true.
  std::chrono::milliseconds next_delay() noexcept;

  // Sleeps next_delay() on the calling thread.
  void sleep() noexcept;

  void reset() noexcept { attempt_ = 0; }

 private:
  BackoffPolicy policy_;
  Rng rng_;
  int attempt_ = 0;
};

}  // namespace synccount::util
