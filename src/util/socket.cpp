#include "util/socket.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/check.hpp"

namespace synccount::util {

namespace {

constexpr std::size_t kMaxLine = 64u << 20;

// Waits until `fd` is ready for `events` (POLLIN/POLLOUT); false on timeout
// or error. EINTR retries within the same call.
bool wait_ready(int fd, short events, int timeout_ms) noexcept {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return (pfd.revents & (events | POLLHUP | POLLERR)) != 0;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

bool fill_sockaddr(const std::string& path, sockaddr_un& addr) noexcept {
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return false;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

// --- LineSocket ----------------------------------------------------------------

LineSocket::LineSocket(LineSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

LineSocket& LineSocket::operator=(LineSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

LineSocket LineSocket::connect_unix(const std::string& path, int timeout_ms) {
  sockaddr_un addr;
  if (!fill_sockaddr(path, addr)) return LineSocket();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return LineSocket();
  // Unix-socket connects complete immediately or fail (listen backlog full
  // returns EAGAIN); a plain blocking connect cannot wedge the way a TCP
  // SYN can, so the timeout only guards the backlog-full retry edge.
  (void)timeout_ms;
  // synccount-lint: allow(cast) -- POSIX-mandated sockaddr_un -> sockaddr
  // pun; connect() only reads through the common initial sa_family_t member.
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return LineSocket();
  }
  return LineSocket(fd);
}

void LineSocket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool LineSocket::send_line(const std::string& line, int timeout_ms) noexcept {
  if (fd_ < 0) return false;
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    if (!wait_ready(fd_, POLLOUT, timeout_ms)) return false;
    // MSG_NOSIGNAL: a vanished peer is a `false`, never a fatal SIGPIPE.
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool LineSocket::recv_line(std::string& out, int timeout_ms) noexcept {
  if (fd_ < 0) return false;
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      out.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    if (buffer_.size() > kMaxLine) return false;
    if (!wait_ready(fd_, POLLIN, timeout_ms)) return false;
    char chunk[1 << 16];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return false;  // EOF mid-line: the peer died
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

// --- UnixListener ----------------------------------------------------------------

UnixListener::UnixListener(const std::string& path) : path_(path) {
  sockaddr_un addr;
  SC_CHECK(fill_sockaddr(path, addr),
           "socket path too long (" + std::to_string(path.size()) + " bytes): " + path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  SC_CHECK(fd_ >= 0, "cannot create socket: " + std::string(std::strerror(errno)));
  // A stale socket file from a killed daemon must not block the restart;
  // a *live* daemon still fails the bind below because it holds the name
  // only until we unlink -- callers are expected to own the path.
  ::unlink(path.c_str());
  // synccount-lint: allow(cast) -- POSIX-mandated sockaddr_un -> sockaddr
  // pun; bind() only reads through the common initial sa_family_t member.
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    SC_CHECK(false, "cannot listen on " + path + ": " + err);
  }
}

UnixListener::~UnixListener() {
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(path_.c_str());
  }
}

LineSocket UnixListener::accept_conn(int timeout_ms) noexcept {
  if (fd_ < 0 || !wait_ready(fd_, POLLIN, timeout_ms)) return LineSocket();
  const int conn = ::accept(fd_, nullptr, nullptr);
  return conn >= 0 ? LineSocket(conn) : LineSocket();
}

}  // namespace synccount::util
