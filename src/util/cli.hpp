// Minimal command-line flag parser for the bench/example binaries.
// Supports `--name=value`, `--name value` and boolean `--name` forms.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <vector>

namespace synccount::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  std::uint64_t get_u64(const std::string& name, std::uint64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  // Comma-separated list flag (`--adversaries=split,random`); empty items
  // are dropped. When the flag is absent, `fallback` is split the same way.
  std::vector<std::string> get_list(const std::string& name,
                                    const std::string& fallback) const;

  // The parsed flag names that are not in `known`, in name order. Strict
  // front ends (synccount_cli) reject a command line when this is non-empty
  // instead of silently running with a typo'd flag ignored.
  std::vector<std::string> unknown_flags(std::initializer_list<const char*> known) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace synccount::util
