// Deterministic fault injection for crash-recovery testing.
//
// Every recovery path of the sweep service (lease expiry, daemon restart,
// torn-write repair, retry/backoff) is exercised in-tree by planting faults
// at named syscall-adjacent sites. A fault plan is a comma-separated spec,
// configured from the SYNCCOUNT_FAULTS environment variable at first use
// (so chaos tests steer child processes without special flags) or
// explicitly via configure():
//
//   site=op@N[,site=op@N...]
//
// fires `op` on the N-th probe (1-based) of `site`, once. Ops:
//
//   kill       _exit(137) -- a SIGKILL-equivalent death: no flushes, no
//              destructors, nothing graceful
//   drop       should_drop() returns true (the caller skips the action,
//              e.g. a heartbeat silently not sent)
//   torn       on_write() reports a torn write: the caller persists only a
//              seeded-random prefix of the payload and then dies
//   stall:MS   sleep MS milliseconds at the probe (a hung worker)
//
// Example: SYNCCOUNT_FAULTS="worker.group=kill@2,serve.job.commit=torn@1"
// kills a worker right after it computes its second group, and tears the
// daemon's first job-state commit.
//
// Probes on sites with no matching rule are a map lookup on a usually-empty
// table; production runs with SYNCCOUNT_FAULTS unset pay one `empty()` test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace synccount::util {

class FaultInjector {
 public:
  // The process-wide injector, configured from SYNCCOUNT_FAULTS (and
  // SYNCCOUNT_FAULTS_SEED) on first access.
  static FaultInjector& instance();

  FaultInjector() = default;

  // Replaces the active fault plan. Throws std::invalid_argument on a
  // malformed spec. An empty spec disables all faults.
  void configure(const std::string& spec, std::uint64_t seed = 0xFA017);

  bool active() const noexcept { return !rules_.empty(); }

  // True when a `drop` rule fires at this probe: the caller must skip the
  // guarded action (pretend the message was lost).
  bool should_drop(std::string_view site);

  // Fires `kill` (dies on the spot) and `stall` rules.
  void probe(std::string_view site);

  // Torn-write probe for the atomic file helpers: when `torn` is true the
  // caller must persist exactly `keep_bytes` of its `size`-byte payload and
  // then call die() -- simulating a crash mid-write.
  struct WriteFault {
    bool torn = false;
    std::size_t keep_bytes = 0;
  };
  WriteFault on_write(std::string_view site, std::size_t size);

  // SIGKILL-equivalent death: immediate _exit(137), no cleanup.
  [[noreturn]] static void die();

 private:
  enum class Op { kKill, kDrop, kTorn, kStall };
  struct Rule {
    std::string site;
    Op op = Op::kKill;
    std::uint64_t at = 1;        // fire on the at-th probe of the site
    std::uint64_t stall_ms = 0;  // kStall only
    std::uint64_t hits = 0;
    bool fired = false;
  };

  // Returns the rule of kind `op` firing at this probe of `site`, if any.
  Rule* match(std::string_view site, Op op);

  std::mutex mutex_;
  std::vector<Rule> rules_;
  std::uint64_t seed_ = 0xFA017;
};

}  // namespace synccount::util
