// Deterministic mergeable quantile sketch (KLL-style level compaction).
//
// The exact StreamingStats path retains one double per sample so merged
// quantiles are exact -- the memory wall for million-cell grids and the
// bandwidth wall for the sweep service (a shard partial carries every
// sample). This sketch replaces the retained vector with a bounded set of
// weighted level buffers: level l holds items of weight 2^l, a full level is
// sorted and every other item promoted one level up, so memory stays
// O(k * log(n/k)) whatever n does.
//
// Unlike textbook KLL the compaction offset is NOT random: each level keeps
// an alternating parity bit, so the sketch state is a pure function of the
// (k, operation sequence) pair. That is the same determinism contract the
// exact path has -- two sketches fed the same adds/merges in the same order
// are bit-identical, which keeps aggregates thread-count-independent (the
// engine folds cells in cell order) and lets merged shard partials
// byte-compare against a single-process run.
//
// Error contract: quantile(p) returns a retained sample value whose rank in
// the full input stream differs from p * (count - 1) by at most
// rank_error_weight() + (heaviest item weight - 1). The bound is tracked
// exactly at runtime -- every compaction of a level-l buffer perturbs any
// rank estimate by at most 2^l, so the sketch accumulates those weights
// instead of quoting an asymptotic formula. For the default k it stays
// within a few percent of n: with equal per-level capacity k the stream
// pushes ~n / (k 2^l) compactions through level l, so the total is about
// n * levels / k (levels ~ log2(n/k)); ~6.5% of n at k = 200, n = 1e6, and
// the alternating parities make observed error roughly half the tracked
// bound. Callers needing exact quantiles use StatsMode::kExact.
#pragma once

#include <cstdint>
#include <vector>

namespace synccount::util {

class KllSketch {
 public:
  static constexpr std::size_t kDefaultK = 200;

  explicit KllSketch(std::size_t k = kDefaultK);

  void add(double x);

  // Deterministic left-fold merge: the result is a pure function of the two
  // states (append other's levels, then re-compact with this sketch's
  // parities). Merging into an empty sketch copies `other` exactly, so a
  // fold seeded from a default-constructed sketch reproduces the chain of
  // the partials it folds. NOT associative across different fold shapes --
  // reproducibility requires folding in one defined order (group order
  // everywhere in this codebase).
  void merge(const KllSketch& other);

  std::uint64_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  std::size_t k() const noexcept { return k_; }

  // A retained sample value near rank p * (count - 1); NaN when empty.
  double quantile(double p) const;

  // Worst-case absolute rank error accumulated so far (in items): the sum of
  // 2^l over every level-l compaction performed, plus what merged-in
  // sketches carried. Exact quantiles have weight 0.
  std::uint64_t rank_error_weight() const noexcept { return error_weight_; }

  // rank_error_weight() relative to the stream length; 0 when empty.
  double rank_error_bound() const noexcept;

  // Total retained items across all levels (the memory footprint).
  std::size_t retained() const noexcept;

  // The weight of the heaviest level, 2^(levels - 1): the rank granularity
  // of a single retained item (the discretisation term of the error bound).
  std::uint64_t max_item_weight() const noexcept;

  // --- Serialisation access (the wire codec in stats.cpp) -------------------
  // Level l items in storage order: level 0 in insertion order, higher
  // levels in promotion order. Round-tripping levels + parities +
  // count/error_weight through restore() reproduces the state bit-for-bit.
  const std::vector<std::vector<double>>& levels() const noexcept { return levels_; }
  const std::vector<std::uint8_t>& parities() const noexcept { return parities_; }

  // Rebuilds a sketch from serialized state; SC_CHECKs the structural
  // invariants (parity per level, sum of level weights == count).
  static KllSketch restore(std::size_t k, std::uint64_t count,
                           std::uint64_t error_weight,
                           std::vector<std::vector<double>> levels,
                           std::vector<std::uint8_t> parities);

 private:
  void compact_while_over_capacity();
  void compact_level(std::size_t level);

  std::size_t k_;
  std::uint64_t count_ = 0;
  std::uint64_t error_weight_ = 0;
  std::vector<std::vector<double>> levels_;
  std::vector<std::uint8_t> parities_;  // alternating compaction offset per level
};

}  // namespace synccount::util
