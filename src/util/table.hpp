// ASCII table rendering for the benchmark harnesses so that regenerated
// paper tables (Table 1 etc.) print with aligned columns.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace synccount::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  // Renders with a header rule and column alignment (numbers right-aligned
  // is the caller's concern; we align left and pad).
  void print(std::ostream& os) const;

  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats helpers used all over the bench binaries.
std::string fmt_u64(std::uint64_t v);
std::string fmt_double(double v, int precision = 2);
std::string fmt_bool(bool v);

}  // namespace synccount::util
