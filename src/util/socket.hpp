// Unix-domain stream sockets with line-oriented I/O and deadlines.
//
// The sweep service speaks newline-delimited JSON over a Unix socket
// (serve/protocol.hpp). This layer owns the file descriptors and the two
// failure modes that matter for robustness: peers that disappear (EPIPE /
// ECONNRESET map to a clean `false`, never a signal -- SIGPIPE is
// suppressed per-send) and peers that stall (every read/write takes a
// timeout and gives up instead of wedging the daemon loop).
#pragma once

#include <string>

namespace synccount::util {

// A connected stream socket with buffered line reads. Movable, not
// copyable; closes the fd on destruction.
class LineSocket {
 public:
  LineSocket() = default;
  explicit LineSocket(int fd) noexcept : fd_(fd) {}
  ~LineSocket() { close(); }

  LineSocket(LineSocket&& other) noexcept;
  LineSocket& operator=(LineSocket&& other) noexcept;
  LineSocket(const LineSocket&) = delete;
  LineSocket& operator=(const LineSocket&) = delete;

  // Connects to a Unix socket path. Returns an invalid socket (valid() ==
  // false) when the connect fails -- callers retry through util::Backoff.
  static LineSocket connect_unix(const std::string& path, int timeout_ms);

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  void close() noexcept;

  // Writes `line` plus a trailing '\n' in full. False on any error or when
  // the deadline passes first (the peer is gone or stalled).
  bool send_line(const std::string& line, int timeout_ms) noexcept;

  // Reads up to the next '\n' (consumed, not returned). False on EOF,
  // error, timeout, or an over-long line (> 64 MiB: a framing bug, not a
  // message).
  bool recv_line(std::string& out, int timeout_ms) noexcept;

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes read past the last returned line
};

// A listening Unix socket. Removes a stale socket file on bind and unlinks
// its own on destruction.
class UnixListener {
 public:
  // Throws std::invalid_argument when the socket cannot be bound (path too
  // long, directory missing, address in use by a live listener).
  explicit UnixListener(const std::string& path);
  ~UnixListener();

  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  int fd() const noexcept { return fd_; }
  const std::string& path() const noexcept { return path_; }

  // Accepts one pending connection; invalid socket when none is pending
  // within the timeout.
  LineSocket accept_conn(int timeout_ms) noexcept;

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace synccount::util
