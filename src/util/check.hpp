// Contract-checking helpers (C++ Core Guidelines I.6/E.12 flavoured).
//
// SC_CHECK      -- precondition on public API arguments; throws
//                  std::invalid_argument with a formatted message.
// SC_REQUIRE    -- internal invariant; throws std::logic_error.
// SC_ASSERT     -- debug-only assertion (compiled out in NDEBUG builds);
//                  used on hot paths where a violated condition indicates
//                  a bug in this library, never bad user input.
#pragma once

#include <cassert>
#include <sstream>
#include <stdexcept>
#include <string>

namespace synccount::util {

[[noreturn]] inline void throw_invalid_argument(const char* expr, const char* file, int line,
                                                const std::string& msg) {
  std::ostringstream os;
  os << "precondition violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_logic_error(const char* expr, const char* file, int line,
                                           const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  throw std::logic_error(os.str());
}

}  // namespace synccount::util

#define SC_CHECK(cond, msg)                                                              \
  do {                                                                                   \
    if (!(cond)) ::synccount::util::throw_invalid_argument(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#define SC_REQUIRE(cond, msg)                                                       \
  do {                                                                              \
    if (!(cond)) ::synccount::util::throw_logic_error(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#define SC_ASSERT(cond) assert(cond)
