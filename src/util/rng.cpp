#include "util/rng.hpp"

namespace synccount::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

Rng::Rng(std::uint64_t seed) noexcept {
  // Seed the four xoshiro words from SplitMix64, as recommended by the
  // xoshiro authors; guarantees a non-zero state.
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Rejection sampling: draw from the largest multiple of `bound` below 2^64.
  const std::uint64_t threshold = (0 - bound) % bound;  // (2^64 - bound) mod bound
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) noexcept { return next_double() < p; }

Rng Rng::split() noexcept { return Rng(hash_combine(next_u64(), 0xa02bdbf7bb3c0a7ULL)); }

}  // namespace synccount::util
