// Fixed-capacity bit vector used for bit-exact algorithm states.
//
// The paper defines space complexity S(A) = ceil(log |X|) as the number of
// bits a node stores *and broadcasts*. To make those numbers real rather
// than analytic, every algorithm in this library serialises its state into a
// BitVec of exactly state_bits() bits; the simulator transports only those
// bits and the Byzantine adversary may substitute arbitrary bit patterns.
//
// Capacity is 256 bits, enough for every construction the planner will
// instantiate (each recursion level adds ~13 bits on top of a <=64-bit base).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/check.hpp"

namespace synccount::util {

class BitVec {
 public:
  static constexpr int kCapacityBits = 256;
  static constexpr int kWords = kCapacityBits / 64;

  constexpr BitVec() noexcept : words_{} {}

  // Read `width` bits (<= 64) starting at bit `offset` (LSB-first layout).
  std::uint64_t get_bits(int offset, int width) const noexcept {
    SC_ASSERT(width >= 0 && width <= 64);
    SC_ASSERT(offset >= 0 && offset + width <= kCapacityBits);
    if (width == 0) return 0;
    const int w = offset / 64;
    const int b = offset % 64;
    std::uint64_t lo = words_[w] >> b;
    if (b + width > 64) {
      lo |= words_[w + 1] << (64 - b);
    }
    return width == 64 ? lo : (lo & ((1ULL << width) - 1));
  }

  // Write `width` bits (<= 64) of `value` starting at bit `offset`.
  void set_bits(int offset, int width, std::uint64_t value) noexcept {
    SC_ASSERT(width >= 0 && width <= 64);
    SC_ASSERT(offset >= 0 && offset + width <= kCapacityBits);
    if (width == 0) return;
    const std::uint64_t mask = width == 64 ? ~0ULL : ((1ULL << width) - 1);
    value &= mask;
    const int w = offset / 64;
    const int b = offset % 64;
    words_[w] = (words_[w] & ~(mask << b)) | (value << b);
    if (b + width > 64) {
      const int hi = b + width - 64;  // bits spilling into the next word
      const std::uint64_t hi_mask = (1ULL << hi) - 1;
      words_[w + 1] = (words_[w + 1] & ~hi_mask) | (value >> (64 - b));
    }
  }

  bool get_bit(int offset) const noexcept { return get_bits(offset, 1) != 0; }
  void set_bit(int offset, bool v) noexcept { set_bits(offset, 1, v ? 1 : 0); }

  // Zero all bits at offset >= `bits` (normalisation so that equality over
  // the full words equals equality over the meaningful prefix).
  void truncate(int bits) noexcept {
    SC_ASSERT(bits >= 0 && bits <= kCapacityBits);
    for (int w = 0; w < kWords; ++w) {
      const int lo = w * 64;
      if (bits <= lo) {
        words_[w] = 0;
      } else if (bits < lo + 64) {
        words_[w] &= (1ULL << (bits - lo)) - 1;
      }
    }
  }

  friend bool operator==(const BitVec& a, const BitVec& b) noexcept { return a.words_ == b.words_; }
  friend bool operator!=(const BitVec& a, const BitVec& b) noexcept { return !(a == b); }

  // Lexicographic order (LSB word first) -- used for canonical adversary choices.
  friend bool operator<(const BitVec& a, const BitVec& b) noexcept {
    for (int i = kWords - 1; i >= 0; --i) {
      if (a.words_[i] != b.words_[i]) return a.words_[i] < b.words_[i];
    }
    return false;
  }

  std::size_t hash() const noexcept {
    std::uint64_t h = 0x2545f4914f6cdd1dULL;
    for (auto w : words_) {
      h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h *= 0xff51afd7ed558ccdULL;
    }
    return static_cast<std::size_t>(h);
  }

  // Render the low `bits` bits as a hex string (for traces and debugging).
  std::string to_hex(int bits) const;

 private:
  std::array<std::uint64_t, kWords> words_;
};

struct BitVecHash {
  std::size_t operator()(const BitVec& v) const noexcept { return v.hash(); }
};

// Sequential bit writer/reader over a BitVec; keeps an offset cursor so that
// nested algorithm components can serialise themselves field by field.
class BitWriter {
 public:
  explicit BitWriter(BitVec& v) noexcept : v_(&v) {}
  void write(int width, std::uint64_t value) noexcept {
    v_->set_bits(offset_, width, value);
    offset_ += width;
  }
  int offset() const noexcept { return offset_; }

 private:
  BitVec* v_;
  int offset_ = 0;
};

class BitReader {
 public:
  explicit BitReader(const BitVec& v) noexcept : v_(&v) {}
  std::uint64_t read(int width) noexcept {
    const std::uint64_t r = v_->get_bits(offset_, width);
    offset_ += width;
    return r;
  }
  int offset() const noexcept { return offset_; }

 private:
  const BitVec* v_;
  int offset_ = 0;
};

// --- Byte-stream primitives (the columnar binary trace format) ---------------
//
// LEB128 varints, zigzag for signed deltas, and fixed little-endian scalars
// over std::string buffers. Byte-for-byte deterministic: the same values
// always encode to the same bytes, which is what lets the binary TraceSink
// keep the JSONL formats' byte-identity contract across backends and thread
// counts. Readers SC_CHECK truncation so a torn file fails loudly.

// Appends an LEB128 varint (7 bits per byte, low bits first).
void put_varint(std::string& out, std::uint64_t v);

// Reads a varint at `pos`, advancing it. SC_CHECKs truncation/overlong input.
std::uint64_t get_varint(std::string_view in, std::size_t& pos);

// Zigzag maps signed deltas to small unsigned values (0 -> 0, -1 -> 1, ...).
constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
constexpr std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

// Fixed-width little-endian scalars. Doubles go through their bit pattern so
// the round-trip is bit-exact (NaN payloads included).
void put_u32le(std::string& out, std::uint32_t v);
std::uint32_t get_u32le(std::string_view in, std::size_t& pos);
void put_f64le(std::string& out, double v);
double get_f64le(std::string_view in, std::size_t& pos);

}  // namespace synccount::util
