// Minimal JSON value + codec for the distribution wire format.
//
// Sharded sweeps ship ExperimentSpecs to worker processes and partial
// AggregateResults back (sim/experiment_io.hpp), one JSON object per line.
// The codec therefore has two hard requirements the usual "just print it"
// approach misses:
//
//  * Exact numeric round-trips. Doubles are rendered with std::to_chars
//    shortest-round-trip form and integers keep full 64-bit range; a parsed
//    number stores its original token, so parse(dump(x)).dump() == dump(x)
//    and the merged-aggregate byte-identity contract can hold end to end.
//  * Deterministic dumps. Object members keep insertion order (no hashing),
//    so the same data always serialises to the same bytes.
//
// The model is deliberately small: null, bool, number, string, array,
// object. parse() throws std::invalid_argument on malformed input; accessors
// throw on type mismatches, so reading a malformed wire file fails loudly
// instead of folding garbage into an aggregate.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace synccount::util {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null

  static Json boolean(bool b);
  static Json number(double v);             // shortest round-trip rendering
  static Json number(std::uint64_t v);
  static Json number(std::int64_t v);
  static Json number(int v) { return number(static_cast<std::int64_t>(v)); }
  static Json string(std::string s);
  static Json array();
  static Json object();

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }

  // --- Scalar accessors (throw std::invalid_argument on mismatch) ----------
  bool as_bool() const;
  double as_double() const;
  std::uint64_t as_u64() const;
  std::int64_t as_i64() const;
  int as_int() const;
  const std::string& as_string() const;

  // --- Arrays ---------------------------------------------------------------
  std::size_t size() const;  // array or object element count
  const Json& at(std::size_t i) const;
  void push_back(Json v);

  // --- Objects (insertion-ordered) -----------------------------------------
  bool has(std::string_view key) const;
  const Json* find(std::string_view key) const;  // nullptr when absent
  const Json& at(std::string_view key) const;    // throws when absent
  void set(std::string key, Json v);             // overwrites in place

  // Members in insertion order (iteration for generic consumers).
  const std::vector<std::pair<std::string, Json>>& members() const;

  // Compact single-line rendering (the line-oriented wire format).
  std::string dump() const;

  // Throws std::invalid_argument on malformed input or trailing garbage.
  static Json parse(std::string_view text);

  // Internal: install a pre-validated numeric token verbatim (the parser
  // stores the original spelling so round-trips are byte-exact).
  void set_number_token(std::string token);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  std::string scalar_;  // number token (kNumber) or string value (kString)
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;

  void dump_to(std::string& out) const;
};

}  // namespace synccount::util
