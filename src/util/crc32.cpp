#include "util/crc32.hpp"

#include <array>

namespace synccount::util {

namespace {

std::array<std::uint32_t, 256> make_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data) noexcept {
  static const std::array<std::uint32_t, 256> table = make_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string crc32_hex(std::string_view data) {
  static const char* kHex = "0123456789abcdef";
  const std::uint32_t v = crc32(data);
  std::string out(8, '0');
  for (int i = 0; i < 8; ++i) out[7 - i] = kHex[(v >> (4 * i)) & 0xFu];
  return out;
}

}  // namespace synccount::util
