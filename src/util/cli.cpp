#include "util/cli.hpp"

#include <cstdlib>

namespace synccount::util {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      // Bare flags are booleans; values must use --name=value (the
      // space-separated form is ambiguous with positional arguments).
      flags_[arg] = "true";
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::get_string(const std::string& name, const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

std::uint64_t Cli::get_u64(const std::string& name, std::uint64_t fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::strtoull(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> Cli::get_list(const std::string& name,
                                       const std::string& fallback) const {
  const std::string value = get_string(name, fallback);
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    const std::size_t end = comma == std::string::npos ? value.size() : comma;
    if (end > start) out.push_back(value.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::vector<std::string> Cli::unknown_flags(std::initializer_list<const char*> known) const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : flags_) {
    bool found = false;
    for (const char* k : known) {
      if (name == k) {
        found = true;
        break;
      }
    }
    if (!found) unknown.push_back(name);
  }
  return unknown;
}

}  // namespace synccount::util
