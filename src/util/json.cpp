#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <stdexcept>

namespace synccount::util {

namespace {

[[noreturn]] void fail(const std::string& what) { throw std::invalid_argument("json: " + what); }

const char* type_name(Json::Type t) {
  switch (t) {
    case Json::Type::kNull: return "null";
    case Json::Type::kBool: return "bool";
    case Json::Type::kNumber: return "number";
    case Json::Type::kString: return "string";
    case Json::Type::kArray: return "array";
    case Json::Type::kObject: return "object";
  }
  return "?";
}

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(c >> 4) & 0xf]);
          out.push_back(kHex[c & 0xf]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json v = value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage at offset " + std::to_string(pos_));
    return v;
  }

 private:
  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::size_t pos_ = 0;

  [[noreturn]] void err(const std::string& what) const {
    fail(what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) err("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) err(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json value(int depth) {
    if (depth > kMaxDepth) err("nesting too deep");
    skip_ws();
    switch (peek()) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return Json::string(string());
      case 't':
        if (!consume_literal("true")) err("bad literal");
        return Json::boolean(true);
      case 'f':
        if (!consume_literal("false")) err("bad literal");
        return Json::boolean(false);
      case 'n':
        if (!consume_literal("null")) err("bad literal");
        return Json();
      default: return number();
    }
  }

  Json object(int depth) {
    expect('{');
    Json out = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      out.set(std::move(key), value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return out;
      if (c != ',') err("expected ',' or '}'");
    }
  }

  Json array(int depth) {
    expect('[');
    Json out = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.push_back(value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return out;
      if (c != ',') err("expected ',' or ']'");
    }
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        err("bad \\u escape");
      }
    }
    return v;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xf0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) err("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) err("raw control character in string");
        out.push_back(c);
        continue;
      }
      const char e = peek();
      ++pos_;
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = hex4();
          if (cp >= 0xd800 && cp < 0xdc00) {  // high surrogate: need the pair
            if (!consume_literal("\\u")) err("unpaired surrogate");
            const unsigned lo = hex4();
            if (lo < 0xdc00 || lo > 0xdfff) err("bad low surrogate");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
          } else if (cp >= 0xdc00 && cp < 0xe000) {
            err("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: err("bad escape");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const std::size_t d0 = pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
      if (pos_ == d0) err("expected digits");
    };
    const std::size_t int_start = pos_;
    digits();
    // RFC 8259: the integer part is "0" or starts with a nonzero digit.
    if (text_[int_start] == '0' && pos_ - int_start > 1) err("leading zero in number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      digits();
    }
    Json out;
    out.set_number_token(std::string(text_.substr(start, pos_ - start)));
    return out;
  }
};

}  // namespace

void Json::set_number_token(std::string token) {
  type_ = Type::kNumber;
  scalar_ = std::move(token);
}

Json Json::boolean(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::number(double v) {
  if (!std::isfinite(v)) fail("cannot serialise a non-finite double");
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);  // shortest round-trip
  Json j;
  j.set_number_token(std::string(buf, res.ptr));
  return j;
}

Json Json::number(std::uint64_t v) {
  Json j;
  j.set_number_token(std::to_string(v));
  return j;
}

Json Json::number(std::int64_t v) {
  Json j;
  j.set_number_token(std::to_string(v));
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.scalar_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) fail(std::string("expected bool, got ") + type_name(type_));
  return bool_;
}

double Json::as_double() const {
  if (type_ != Type::kNumber) fail(std::string("expected number, got ") + type_name(type_));
  double v = 0;
  const auto res = std::from_chars(scalar_.data(), scalar_.data() + scalar_.size(), v);
  if (res.ec != std::errc() || res.ptr != scalar_.data() + scalar_.size()) {
    fail("bad number token: " + scalar_);
  }
  return v;
}

std::uint64_t Json::as_u64() const {
  if (type_ != Type::kNumber) fail(std::string("expected number, got ") + type_name(type_));
  std::uint64_t v = 0;
  const auto res = std::from_chars(scalar_.data(), scalar_.data() + scalar_.size(), v);
  if (res.ec != std::errc() || res.ptr != scalar_.data() + scalar_.size()) {
    fail("expected unsigned integer, got: " + scalar_);
  }
  return v;
}

std::int64_t Json::as_i64() const {
  if (type_ != Type::kNumber) fail(std::string("expected number, got ") + type_name(type_));
  std::int64_t v = 0;
  const auto res = std::from_chars(scalar_.data(), scalar_.data() + scalar_.size(), v);
  if (res.ec != std::errc() || res.ptr != scalar_.data() + scalar_.size()) {
    fail("expected integer, got: " + scalar_);
  }
  return v;
}

int Json::as_int() const {
  const std::int64_t v = as_i64();
  if (v < INT32_MIN || v > INT32_MAX) fail("integer out of int range: " + scalar_);
  return static_cast<int>(v);
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) fail(std::string("expected string, got ") + type_name(type_));
  return scalar_;
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return items_.size();
  if (type_ == Type::kObject) return members_.size();
  fail(std::string("expected array or object, got ") + type_name(type_));
}

const Json& Json::at(std::size_t i) const {
  if (type_ != Type::kArray) fail(std::string("expected array, got ") + type_name(type_));
  if (i >= items_.size()) fail("array index out of range");
  return items_[i];
}

void Json::push_back(Json v) {
  if (type_ != Type::kArray) fail(std::string("expected array, got ") + type_name(type_));
  items_.push_back(std::move(v));
}

bool Json::has(std::string_view key) const { return find(key) != nullptr; }

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) fail(std::string("expected object, got ") + type_name(type_));
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* v = find(key);
  if (v == nullptr) fail("missing key: " + std::string(key));
  return *v;
}

void Json::set(std::string key, Json v) {
  if (type_ != Type::kObject) fail(std::string("expected object, got ") + type_name(type_));
  for (auto& [k, old] : members_) {
    if (k == key) {
      old = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::kObject) fail(std::string("expected object, got ") + type_name(type_));
  return members_;
}

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: out += scalar_; break;
    case Type::kString: append_escaped(out, scalar_); break;
    case Type::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out.push_back(',');
        items_[i].dump_to(out);
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out.push_back(',');
        append_escaped(out, members_[i].first);
        out.push_back(':');
        members_[i].second.dump_to(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace synccount::util
