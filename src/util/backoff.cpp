#include "util/backoff.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>

namespace synccount::util {

std::chrono::milliseconds Backoff::next_delay() noexcept {
  // multiplier^attempt overflows to +inf around attempt 60 with the default
  // policy. min() against the cap absorbs the inf, but a huge cap (e.g.
  // milliseconds::max()) times the jitter scale can still exceed what
  // llround can represent, and llround of an out-of-range double is
  // unspecified -- so every clamp happens in double space, below a bound
  // that converts safely, before the cast.
  constexpr double kMaxDelayMs = 9.0e18;  // < int64 max, castable
  const double base = static_cast<double>(policy_.initial.count()) *
                      std::pow(policy_.multiplier, static_cast<double>(attempt_));
  // Saturate: with max_attempts = 0 the loop retries forever and ++ would
  // eventually sign-overflow.
  if (attempt_ < std::numeric_limits<int>::max()) ++attempt_;
  const double capped =
      std::min({base, static_cast<double>(policy_.cap.count()), kMaxDelayMs});
  // Scale by [1-jitter, 1+jitter); keep at least 1ms so a retry loop can
  // never spin hot even with aggressive policies.
  const double j = std::clamp(policy_.jitter, 0.0, 1.0);
  double scaled = std::min(capped * (1.0 - j + 2.0 * j * rng_.next_double()), kMaxDelayMs);
  if (!std::isfinite(scaled)) scaled = kMaxDelayMs;
  return std::chrono::milliseconds(std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::llround(scaled))));
}

void Backoff::sleep() noexcept { std::this_thread::sleep_for(next_delay()); }

}  // namespace synccount::util
