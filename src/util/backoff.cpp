#include "util/backoff.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

namespace synccount::util {

std::chrono::milliseconds Backoff::next_delay() noexcept {
  const double base = static_cast<double>(policy_.initial.count()) *
                      std::pow(policy_.multiplier, static_cast<double>(attempt_));
  ++attempt_;
  const double capped = std::min(base, static_cast<double>(policy_.cap.count()));
  // Scale by [1-jitter, 1+jitter); keep at least 1ms so a retry loop can
  // never spin hot even with aggressive policies.
  const double j = std::clamp(policy_.jitter, 0.0, 1.0);
  const double scaled = capped * (1.0 - j + 2.0 * j * rng_.next_double());
  return std::chrono::milliseconds(std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::llround(scaled))));
}

void Backoff::sleep() noexcept { std::this_thread::sleep_for(next_delay()); }

}  // namespace synccount::util
