// Summary statistics over repeated measurements (stabilisation times,
// message counts, ...) used by the benchmark harnesses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace synccount::util {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  std::string to_string() const;
};

// Mergeable accumulator used by the batched experiment engine: add one
// sample at a time, fold accumulators together, read summary statistics at
// the end. Mean/variance are maintained streaming (Welford); quantiles are
// exact, computed from the retained samples (one double per sample -- fine
// at experiment scale, where a "sample" is a whole execution).
//
// Determinism contract: two accumulators fed the same samples in the same
// order are bit-identical, which is what lets the engine produce identical
// aggregates for any thread count (it folds per-cell results in cell order).
class StreamingStats {
 public:
  void add(double x);
  void merge(const StreamingStats& other);  // as if other's samples were add()ed in order

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }
  double mean() const noexcept { return mean_; }
  double stddev() const;               // sample stddev (n - 1); 0 for n < 2
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  // Exact quantile with linear interpolation, p in [0, 1]; 0 when empty.
  double quantile(double p) const;

  // The retained samples in add() order -- what the wire codec serialises so
  // a deserialised accumulator replays the identical fp-op sequence.
  const std::vector<double>& samples() const noexcept { return samples_; }

  Summary summary() const;             // same shape the benches already print
  std::string to_string() const;

 private:
  double mean_ = 0.0;
  double m2_ = 0.0;                    // sum of squared deviations (Welford)
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<double> samples_;        // retained for exact quantiles
  mutable bool sorted_ = true;         // lazily sorted copy lives in sorted_samples_
  mutable std::vector<double> sorted_samples_;
};

class Json;

// Wire codec for StreamingStats (the sharded-sweep format of
// sim/experiment_io.hpp): serialises the retained samples in add() order;
// deserialisation replays them through add(), so a round-tripped accumulator
// is bit-identical to the original -- mean/m2 follow the same fp-op
// sequence and merged quantiles stay exact.
Json to_json(const StreamingStats& stats);
StreamingStats streaming_stats_from_json(const Json& j);

// Computes summary statistics; the input is copied and sorted internally.
Summary summarize(std::vector<double> samples);

// Convenience overload for integer samples.
Summary summarize_u64(const std::vector<std::uint64_t>& samples);

// Linear regression slope of y on x (least squares); returns 0 for <2 points.
double regression_slope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace synccount::util
