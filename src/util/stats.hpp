// Summary statistics over repeated measurements (stabilisation times,
// message counts, ...) used by the benchmark harnesses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace synccount::util {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  std::string to_string() const;
};

// Computes summary statistics; the input is copied and sorted internally.
Summary summarize(std::vector<double> samples);

// Convenience overload for integer samples.
Summary summarize_u64(const std::vector<std::uint64_t>& samples);

// Linear regression slope of y on x (least squares); returns 0 for <2 points.
double regression_slope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace synccount::util
