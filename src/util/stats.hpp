// Summary statistics over repeated measurements (stabilisation times,
// message counts, ...) used by the benchmark harnesses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/kll_sketch.hpp"

namespace synccount::util {

struct Summary {
  std::size_t count = 0;
  // NaN when count == 0: an empty accumulator must never be confusable with
  // one that saw a real zero sample (to_string prints "n/a").
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  std::string to_string() const;
};

// How an accumulator answers quantile queries.
//
//   kExact   retain every sample; quantiles are exact and merge replays the
//            samples, so merged quantiles are exact too. O(n) memory. The
//            default, and the right choice up to ~100k samples per
//            accumulator.
//   kSketch  feed a deterministic KLL sketch (util/kll_sketch.hpp) instead
//            of retaining samples; O(k log(n/k)) memory whatever n does,
//            quantiles approximate within the sketch's tracked rank-error
//            bound. Mean/stddev/min/max stay exact (streaming). Merge uses
//            Chan's parallel variance formula + sketch merge -- still a
//            deterministic left-fold, no longer bit-equal to a sample
//            replay.
enum class StatsMode { kExact, kSketch };

class Json;
class StreamingStats;
Json to_json(const StreamingStats& stats);
StreamingStats streaming_stats_from_json(const Json& j);

// Mergeable accumulator used by the batched experiment engine: add one
// sample at a time, fold accumulators together, read summary statistics at
// the end. Mean/variance are maintained streaming (Welford); quantiles are
// exact from retained samples in kExact mode (one double per sample -- fine
// at experiment scale) or approximate from a bounded sketch in kSketch mode
// (million-cell grids).
//
// Determinism contract: two accumulators of the same mode fed the same
// add()/merge() sequence are bit-identical, which is what lets the engine
// produce identical aggregates for any thread count (it folds per-cell
// results in cell order and merges per-group partials in group order).
//
// Thread safety: every const member (quantile, summary, ...) is genuinely
// read-only -- no lazily mutated cache -- so concurrent readers over a
// shared accumulator need no external synchronisation. quantile()/summary()
// sort a local copy per call; summary() sorts once for all three quantiles.
class StreamingStats {
 public:
  StreamingStats() = default;  // exact mode
  explicit StreamingStats(StatsMode mode, std::size_t sketch_k = KllSketch::kDefaultK);

  StatsMode mode() const noexcept { return mode_; }

  void add(double x);

  // As if other's samples were add()ed in order (kExact: bit-identical
  // replay). Modes must match, except that merging into an EMPTY accumulator
  // adopts other's mode wholesale -- so default-constructed fold seeds
  // (merge_aggregates, ShardPartial::total) work for either mode.
  void merge(const StreamingStats& other);

  std::size_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  double mean() const noexcept { return mean_; }
  double stddev() const;               // sample stddev (n - 1); 0 for n < 2
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  // Quantile with linear interpolation (kExact) or sketch lookup (kSketch),
  // p clamped to [0, 1]; NaN when empty. Pure const: safe to call
  // concurrently with other const members.
  double quantile(double p) const;

  // The retained samples in add() order -- what the wire codec serialises so
  // a deserialised accumulator replays the identical fp-op sequence. kExact
  // only (SC_CHECK).
  const std::vector<double>& samples() const;

  // The quantile sketch; kSketch only (SC_CHECK).
  const KllSketch& sketch() const;

  Summary summary() const;             // same shape the benches already print
  std::string to_string() const;

 private:
  // The wire codec transplants sketch-mode state directly (m2_ must
  // round-trip bit-exactly; recomputing it from stddev() would not).
  friend Json to_json(const StreamingStats& stats);
  friend StreamingStats streaming_stats_from_json(const Json& j);

  StatsMode mode_ = StatsMode::kExact;
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;                    // sum of squared deviations (Welford)
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<double> samples_;        // kExact: retained for exact quantiles
  std::optional<KllSketch> sketch_;    // kSketch: bounded quantile state
};

// Wire codec for StreamingStats (the sharded-sweep format of
// sim/experiment_io.hpp). kExact serialises the retained samples in add()
// order and deserialisation replays them through add(), so a round-tripped
// accumulator is bit-identical to the original -- mean/m2 follow the same
// fp-op sequence and merged quantiles stay exact. kSketch serialises the
// streaming moments plus the sketch state (levels, parities, error bound)
// verbatim -- O(k log n) bytes instead of O(n) -- and restores it
// bit-identically (Json::number round-trips doubles exactly).
Json to_json(const StreamingStats& stats);
StreamingStats streaming_stats_from_json(const Json& j);

// Computes summary statistics; the input is copied and sorted internally.
Summary summarize(std::vector<double> samples);

// Convenience overload for integer samples.
Summary summarize_u64(const std::vector<std::uint64_t>& samples);

// Linear regression slope of y on x (least squares); returns 0 for <2 points.
double regression_slope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace synccount::util
