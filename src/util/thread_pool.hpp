// A small work-stealing thread pool for the batched experiment engine.
//
// Each worker owns a deque: it pushes and pops its own work at the back
// (LIFO, cache-friendly) and steals from the front of a victim's deque when
// empty (FIFO, takes the oldest and therefore largest-granularity work).
// External submitters distribute tasks round-robin across the worker deques.
//
// The pool is deliberately simple -- mutex-guarded deques, not lock-free
// Chase-Lev -- because experiment cells are coarse (whole executions, many
// microseconds to seconds each), so queue overhead is irrelevant; what
// matters is that an idle worker can always find leftover work.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace synccount::util {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  // threads == 0 picks std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const noexcept { return static_cast<int>(workers_.size()); }

  // Enqueue one task. Thread-safe; may be called from worker threads (the
  // task then lands on the calling worker's own deque).
  void submit(Task task);

  // Block until every submitted task has finished. Safe to reuse the pool
  // afterwards. Must not be called from a worker thread.
  void wait_idle();

  // Run fn(0), ..., fn(count - 1) across the pool and wait for completion.
  // Scheduling order is unspecified; callers must make iterations
  // independent and write results into per-index slots.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  struct Queue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t me);
  bool try_pop(std::size_t me, Task& out);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex idle_mu_;
  std::condition_variable work_cv_;   // workers wait here for new tasks
  std::condition_variable idle_cv_;   // wait_idle() waits here
  std::size_t pending_ = 0;           // submitted but not yet finished
  std::size_t queued_ = 0;            // submitted but not yet popped
  std::size_t next_queue_ = 0;        // round-robin cursor for external submits
  bool stop_ = false;
};

}  // namespace synccount::util
