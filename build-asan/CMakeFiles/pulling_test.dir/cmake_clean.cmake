file(REMOVE_RECURSE
  "CMakeFiles/pulling_test.dir/tests/pulling_test.cpp.o"
  "CMakeFiles/pulling_test.dir/tests/pulling_test.cpp.o.d"
  "pulling_test"
  "pulling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
