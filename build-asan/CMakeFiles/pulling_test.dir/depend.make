# Empty dependencies file for pulling_test.
# This may be replaced when dependencies are built.
