# Empty dependencies file for phaseking_test.
# This may be replaced when dependencies are built.
