file(REMOVE_RECURSE
  "CMakeFiles/phaseking_test.dir/tests/phaseking_test.cpp.o"
  "CMakeFiles/phaseking_test.dir/tests/phaseking_test.cpp.o.d"
  "phaseking_test"
  "phaseking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phaseking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
