file(REMOVE_RECURSE
  "CMakeFiles/compiled_table_fuzz_test.dir/tests/compiled_table_fuzz_test.cpp.o"
  "CMakeFiles/compiled_table_fuzz_test.dir/tests/compiled_table_fuzz_test.cpp.o.d"
  "compiled_table_fuzz_test"
  "compiled_table_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiled_table_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
