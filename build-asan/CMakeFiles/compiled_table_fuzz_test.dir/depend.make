# Empty dependencies file for compiled_table_fuzz_test.
# This may be replaced when dependencies are built.
