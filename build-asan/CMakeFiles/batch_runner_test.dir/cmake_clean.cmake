file(REMOVE_RECURSE
  "CMakeFiles/batch_runner_test.dir/tests/batch_runner_test.cpp.o"
  "CMakeFiles/batch_runner_test.dir/tests/batch_runner_test.cpp.o.d"
  "batch_runner_test"
  "batch_runner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
