# Empty dependencies file for batch_runner_test.
# This may be replaced when dependencies are built.
