# Empty dependencies file for experiment_io_test.
# This may be replaced when dependencies are built.
