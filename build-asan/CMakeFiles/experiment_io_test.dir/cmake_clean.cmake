file(REMOVE_RECURSE
  "CMakeFiles/experiment_io_test.dir/tests/experiment_io_test.cpp.o"
  "CMakeFiles/experiment_io_test.dir/tests/experiment_io_test.cpp.o.d"
  "experiment_io_test"
  "experiment_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiment_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
