# Empty dependencies file for game_adversary_test.
# This may be replaced when dependencies are built.
