file(REMOVE_RECURSE
  "CMakeFiles/game_adversary_test.dir/tests/game_adversary_test.cpp.o"
  "CMakeFiles/game_adversary_test.dir/tests/game_adversary_test.cpp.o.d"
  "game_adversary_test"
  "game_adversary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_adversary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
