file(REMOVE_RECURSE
  "CMakeFiles/sink_test.dir/tests/sink_test.cpp.o"
  "CMakeFiles/sink_test.dir/tests/sink_test.cpp.o.d"
  "sink_test"
  "sink_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sink_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
