# Empty dependencies file for sink_test.
# This may be replaced when dependencies are built.
