file(REMOVE_RECURSE
  "CMakeFiles/synthesis_test.dir/tests/synthesis_test.cpp.o"
  "CMakeFiles/synthesis_test.dir/tests/synthesis_test.cpp.o.d"
  "synthesis_test"
  "synthesis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
