# Empty dependencies file for synccount.
# This may be replaced when dependencies are built.
