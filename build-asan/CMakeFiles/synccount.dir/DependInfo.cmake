
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/repeated_consensus.cpp" "CMakeFiles/synccount.dir/src/apps/repeated_consensus.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/apps/repeated_consensus.cpp.o.d"
  "/root/repo/src/apps/tdma.cpp" "CMakeFiles/synccount.dir/src/apps/tdma.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/apps/tdma.cpp.o.d"
  "/root/repo/src/boosting/boosted_counter.cpp" "CMakeFiles/synccount.dir/src/boosting/boosted_counter.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/boosting/boosted_counter.cpp.o.d"
  "/root/repo/src/boosting/leader_split_adversary.cpp" "CMakeFiles/synccount.dir/src/boosting/leader_split_adversary.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/boosting/leader_split_adversary.cpp.o.d"
  "/root/repo/src/boosting/planner.cpp" "CMakeFiles/synccount.dir/src/boosting/planner.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/boosting/planner.cpp.o.d"
  "/root/repo/src/counting/algorithm.cpp" "CMakeFiles/synccount.dir/src/counting/algorithm.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/counting/algorithm.cpp.o.d"
  "/root/repo/src/counting/algorithm_spec.cpp" "CMakeFiles/synccount.dir/src/counting/algorithm_spec.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/counting/algorithm_spec.cpp.o.d"
  "/root/repo/src/counting/randomized.cpp" "CMakeFiles/synccount.dir/src/counting/randomized.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/counting/randomized.cpp.o.d"
  "/root/repo/src/counting/table_algorithm.cpp" "CMakeFiles/synccount.dir/src/counting/table_algorithm.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/counting/table_algorithm.cpp.o.d"
  "/root/repo/src/counting/table_io.cpp" "CMakeFiles/synccount.dir/src/counting/table_io.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/counting/table_io.cpp.o.d"
  "/root/repo/src/counting/trivial.cpp" "CMakeFiles/synccount.dir/src/counting/trivial.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/counting/trivial.cpp.o.d"
  "/root/repo/src/phaseking/consensus.cpp" "CMakeFiles/synccount.dir/src/phaseking/consensus.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/phaseking/consensus.cpp.o.d"
  "/root/repo/src/phaseking/phase_king.cpp" "CMakeFiles/synccount.dir/src/phaseking/phase_king.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/phaseking/phase_king.cpp.o.d"
  "/root/repo/src/pulling/pulling_counter.cpp" "CMakeFiles/synccount.dir/src/pulling/pulling_counter.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/pulling/pulling_counter.cpp.o.d"
  "/root/repo/src/sat/dimacs.cpp" "CMakeFiles/synccount.dir/src/sat/dimacs.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/sat/dimacs.cpp.o.d"
  "/root/repo/src/sat/solver.cpp" "CMakeFiles/synccount.dir/src/sat/solver.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/sat/solver.cpp.o.d"
  "/root/repo/src/sim/adversaries.cpp" "CMakeFiles/synccount.dir/src/sim/adversaries.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/sim/adversaries.cpp.o.d"
  "/root/repo/src/sim/adversary.cpp" "CMakeFiles/synccount.dir/src/sim/adversary.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/sim/adversary.cpp.o.d"
  "/root/repo/src/sim/batch_runner.cpp" "CMakeFiles/synccount.dir/src/sim/batch_runner.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/sim/batch_runner.cpp.o.d"
  "/root/repo/src/sim/checker.cpp" "CMakeFiles/synccount.dir/src/sim/checker.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/sim/checker.cpp.o.d"
  "/root/repo/src/sim/composed_runner.cpp" "CMakeFiles/synccount.dir/src/sim/composed_runner.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/sim/composed_runner.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "CMakeFiles/synccount.dir/src/sim/engine.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/sim/engine.cpp.o.d"
  "/root/repo/src/sim/experiment_io.cpp" "CMakeFiles/synccount.dir/src/sim/experiment_io.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/sim/experiment_io.cpp.o.d"
  "/root/repo/src/sim/faults.cpp" "CMakeFiles/synccount.dir/src/sim/faults.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/sim/faults.cpp.o.d"
  "/root/repo/src/sim/runner.cpp" "CMakeFiles/synccount.dir/src/sim/runner.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/sim/runner.cpp.o.d"
  "/root/repo/src/sim/sink.cpp" "CMakeFiles/synccount.dir/src/sim/sink.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/sim/sink.cpp.o.d"
  "/root/repo/src/synthesis/encoder.cpp" "CMakeFiles/synccount.dir/src/synthesis/encoder.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/synthesis/encoder.cpp.o.d"
  "/root/repo/src/synthesis/game_adversary.cpp" "CMakeFiles/synccount.dir/src/synthesis/game_adversary.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/synthesis/game_adversary.cpp.o.d"
  "/root/repo/src/synthesis/known_tables.cpp" "CMakeFiles/synccount.dir/src/synthesis/known_tables.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/synthesis/known_tables.cpp.o.d"
  "/root/repo/src/synthesis/synthesize.cpp" "CMakeFiles/synccount.dir/src/synthesis/synthesize.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/synthesis/synthesize.cpp.o.d"
  "/root/repo/src/synthesis/verifier.cpp" "CMakeFiles/synccount.dir/src/synthesis/verifier.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/synthesis/verifier.cpp.o.d"
  "/root/repo/src/util/bitio.cpp" "CMakeFiles/synccount.dir/src/util/bitio.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/util/bitio.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "CMakeFiles/synccount.dir/src/util/cli.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/util/cli.cpp.o.d"
  "/root/repo/src/util/json.cpp" "CMakeFiles/synccount.dir/src/util/json.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/util/json.cpp.o.d"
  "/root/repo/src/util/math.cpp" "CMakeFiles/synccount.dir/src/util/math.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/util/math.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/synccount.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/synccount.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/synccount.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "CMakeFiles/synccount.dir/src/util/thread_pool.cpp.o" "gcc" "CMakeFiles/synccount.dir/src/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
