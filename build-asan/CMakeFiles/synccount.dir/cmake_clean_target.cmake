file(REMOVE_RECURSE
  "libsynccount.a"
)
