file(REMOVE_RECURSE
  "CMakeFiles/boosting_smoke_test.dir/tests/boosting_smoke_test.cpp.o"
  "CMakeFiles/boosting_smoke_test.dir/tests/boosting_smoke_test.cpp.o.d"
  "boosting_smoke_test"
  "boosting_smoke_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boosting_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
