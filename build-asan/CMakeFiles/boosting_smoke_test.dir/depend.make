# Empty dependencies file for boosting_smoke_test.
# This may be replaced when dependencies are built.
