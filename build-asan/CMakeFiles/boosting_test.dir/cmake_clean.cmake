file(REMOVE_RECURSE
  "CMakeFiles/boosting_test.dir/tests/boosting_test.cpp.o"
  "CMakeFiles/boosting_test.dir/tests/boosting_test.cpp.o.d"
  "boosting_test"
  "boosting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boosting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
