# Empty dependencies file for synccount_cli.
# This may be replaced when dependencies are built.
