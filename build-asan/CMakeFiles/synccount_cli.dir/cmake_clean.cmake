file(REMOVE_RECURSE
  "CMakeFiles/synccount_cli.dir/tools/synccount_cli.cpp.o"
  "CMakeFiles/synccount_cli.dir/tools/synccount_cli.cpp.o.d"
  "synccount_cli"
  "synccount_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synccount_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
