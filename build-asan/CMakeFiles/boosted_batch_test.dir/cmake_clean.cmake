file(REMOVE_RECURSE
  "CMakeFiles/boosted_batch_test.dir/tests/boosted_batch_test.cpp.o"
  "CMakeFiles/boosted_batch_test.dir/tests/boosted_batch_test.cpp.o.d"
  "boosted_batch_test"
  "boosted_batch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boosted_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
