# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for boosted_batch_test.
