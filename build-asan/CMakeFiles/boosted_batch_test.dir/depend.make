# Empty dependencies file for boosted_batch_test.
# This may be replaced when dependencies are built.
