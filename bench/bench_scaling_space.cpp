// Experiment E6: state-bit scaling in f. The paper's headline: the recursion
// needs O(log^2 f) bits (Theorem 2 / Corollary 2; O(log^2 f / loglog f) with
// the Theorem 3 schedule), an exponential improvement over the Theta(f log f)
// profile of the consensus-based prior work [2]. The bits reported for our
// counters are *bit-exact wire sizes* (states are serialised to exactly this
// many bits in the simulator), not estimates.
//
// Usage: bench_scaling_space [--max-f=F] [--seeds=N] [--threads=N]
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "boosting/planner.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace synccount;
  const util::Cli cli(argc, argv);
  const int max_f = static_cast<int>(cli.get_int("max-f", 1023));
  const int seeds = static_cast<int>(cli.get_int("seeds", 3));
  const bench::Harness harness(cli);

  std::cout << "=== E6: state bits vs resilience ===\n\n";

  util::Table table({"f", "n", "levels", "S(B) bits (exact)", "log2(f)^2", "S/log2(f)^2",
                     "f*log2(f) ([2] profile)"});
  for (int f = 1; f <= max_f; f = 2 * f + 1) {
    const auto plan = boosting::plan_practical(f, 2);
    const auto algo = boosting::build_plan(plan);
    const double lf = std::log2(static_cast<double>(f) + 1.0);
    const double l2 = lf * lf;
    table.add_row({std::to_string(f), std::to_string(algo->num_nodes()),
                   std::to_string(plan.levels.size()), std::to_string(algo->state_bits()),
                   util::fmt_double(l2, 1),
                   util::fmt_double(algo->state_bits() / std::max(l2, 1.0), 2),
                   util::fmt_double(static_cast<double>(f) * lf, 0)});
  }
  table.print(std::cout);

  // Empirical anchor for the analytic profile: the small instances are also
  // run through the experiment engine so the reported bit counts come with a
  // measured stabilisation time (bespoke seed loops are gone; every bench
  // measurement flows through sim::Engine).
  std::cout << "\nMeasured stabilisation of the small instances (engine, split adversary, "
            << seeds << " seeds):\n";
  util::Table measured({"f", "n", "S(B) bits", "T bound", "stabilised", "T measured"});
  for (int f = 1; f <= std::min(max_f, 7); f = 2 * f + 1) {
    const auto algo = boosting::build_plan(boosting::plan_practical(f, 2));
    bench::MeasureOptions opt;
    opt.seeds = seeds;
    opt.stop_after_stable = 120;
    const auto agg = bench::measure_stabilisation(
        harness, "E6-f" + std::to_string(f), algo,
        sim::faults_spread(algo->num_nodes(), f), opt);
    measured.add_row({std::to_string(f), std::to_string(algo->num_nodes()),
                      std::to_string(algo->state_bits()),
                      std::to_string(algo->stabilisation_bound().value_or(0)),
                      bench::fmt_rate(agg), bench::fmt_rounds(agg)});
  }
  measured.print(std::cout);

  std::cout << "\nTheorem 3 schedule (closed-form, log-space; instances too large to build):\n";
  util::Table t3({"P", "k_1", "log2 f", "log2 n", "log2 T", "state bits",
                  "bits/(log2 f)^2"});
  for (int P = 1; P <= 5; ++P) {
    const auto rows = boosting::theorem3_analysis(P);
    const auto& last = rows.back();
    t3.add_row({std::to_string(P), std::to_string(4 * (1 << (P - 1))),
                util::fmt_double(last.log2_f, 1), util::fmt_double(last.log2_n, 1),
                util::fmt_double(last.log2_time, 1), util::fmt_double(last.state_bits, 0),
                util::fmt_double(last.state_bits / (last.log2_f * last.log2_f), 3)});
  }
  t3.print(std::cout);

  std::cout << "\nShape check: S/log^2(f) stays bounded (polylog space) while the\n"
            << "consensus-pipeline profile f*log f grows without bound; at f = 1023\n"
            << "the gap is already two orders of magnitude.\n";
  return 0;
}
