// Experiment E2: regenerate Figure 1 -- the leader pointers b[i] of stacked
// blocks cycling at speeds (2m)^i, and the common windows (the paper's blue
// segments) in which every block points at the same leader for >= tau
// consecutive rounds (Lemmas 1 and 2).
//
// The paper's drawing uses base 2m = 6; we build exactly that geometry with
// k = 6 one-node blocks (m = 3 leader candidates) on the trivial base and
// render the pointer timelines plus the per-leader alignment windows.
//
// Usage: bench_figure1 [--rounds=N] [--render-width=W]
#include <iostream>

#include "bench_common.hpp"
#include "boosting/boosted_counter.hpp"
#include "boosting/planner.hpp"
#include "counting/trivial.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

namespace {

using namespace synccount;

struct Segment {
  std::uint64_t start;
  std::uint64_t len;
  std::uint64_t leader;
};

std::vector<Segment> run_lengths(const std::vector<std::uint64_t>& timeline) {
  std::vector<Segment> segs;
  std::uint64_t start = 0;
  for (std::size_t r = 1; r <= timeline.size(); ++r) {
    if (r == timeline.size() || timeline[r] != timeline[start]) {
      segs.push_back({start, r - start, timeline[start]});
      start = r;
    }
  }
  return segs;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);

  // k = 6 blocks of one node, F = 1 (N > 3F limits F), so 2m = 6 like the
  // paper's figure; tau = 9 and c_i = 9 * 6^{i+1}.
  const int k = 6;
  const int F = 1;
  auto base = std::make_shared<counting::TrivialCounter>(
      boosting::required_input_modulus(k, F));
  const auto algo =
      std::make_shared<boosting::BoostedCounter>(base, boosting::BoostParams{k, F, 4});
  const int tau = algo->tau();
  const int m = algo->m();

  const std::uint64_t rounds =
      cli.get_u64("rounds", 3 * algo->block_modulus(2));  // 3 cycles of block 2

  std::cout << "=== Figure 1 (reproduction): leader pointers across blocks ===\n"
            << "k = " << k << " blocks, m = " << m << " leader candidates, tau = " << tau
            << ", block i holds its pointer for tau*(2m)^i rounds.\n\n";

  // A 1x1x1 experiment grid: the engine handles the degenerate single-cell
  // case too, so even trace-producing benches share the same entry point.
  // The state trace is requested through a RecordSink (the spec itself stays
  // pure data).
  const bench::Harness harness(cli);
  sim::ExperimentSpec spec;
  spec.algo = algo;
  spec.adversaries = {"silent"};
  spec.seeds = 1;
  spec.explicit_seeds = {2};  // pin the exact pre-engine execution
  spec.max_rounds = rounds;
  spec.margin = 10;
  sim::RecordSink record(/*outputs=*/false, /*states=*/true);
  const auto res = harness.run("figure1", spec, {&record}).cells.front().result;

  // Pointer timelines of blocks 0..2 (the figure's h, h+1, h+2).
  std::vector<std::vector<std::uint64_t>> b_of(3);
  for (std::size_t r = 0; r < res.states.size(); ++r) {
    for (int i = 0; i < 3; ++i) {
      b_of[static_cast<std::size_t>(i)].push_back(
          algo->block_view(i, 0, res.states[r][static_cast<std::size_t>(i)]).b);
    }
  }

  // ASCII rendering: one character per bucket of rounds.
  const std::uint64_t width = cli.get_u64("render-width", 96);
  const std::uint64_t bucket = std::max<std::uint64_t>(1, rounds / width);
  for (int i = 2; i >= 0; --i) {
    std::cout << "block " << i << " (period " << algo->block_modulus(i) << "): ";
    for (std::uint64_t r = 0; r + bucket <= rounds; r += bucket) {
      std::cout << b_of[static_cast<std::size_t>(i)][static_cast<std::size_t>(r)];
    }
    std::cout << '\n';
  }

  // Common-leader windows (the blue segments): intervals where blocks 0..2
  // all point at the same beta for >= tau rounds.
  std::cout << "\nCommon-leader windows of length >= tau = " << tau
            << " within the first c_2 = " << algo->block_modulus(2) << " rounds:\n";
  util::Table table({"leader beta", "first window [start, end)", "window length",
                     "Lemma 2 deadline (c_2)"});
  for (std::uint64_t beta = 0; beta < static_cast<std::uint64_t>(m); ++beta) {
    std::uint64_t best_start = 0, best_len = 0;
    std::uint64_t cur_start = 0, cur_len = 0;
    for (std::size_t r = 0; r < res.states.size(); ++r) {
      const bool all = b_of[0][r] == beta && b_of[1][r] == beta && b_of[2][r] == beta;
      if (all) {
        if (cur_len == 0) cur_start = r;
        ++cur_len;
        if (cur_len >= static_cast<std::uint64_t>(tau) && best_len == 0) {
          best_start = cur_start;
          best_len = cur_len;
        }
      } else {
        cur_len = 0;
      }
    }
    std::string window = "none found";
    std::string length = "-";
    if (best_len) {
      window = "[";
      window += std::to_string(best_start);
      window += ", ";
      window += std::to_string(best_start + tau);
      window += ")";
      length = std::to_string(tau);
      length += "+";
    }
    table.add_row({std::to_string(beta), window, length,
                   std::to_string(algo->block_modulus(2))});
  }
  table.print(std::cout);

  // Lemma 1 check: interior run lengths equal tau*(2m)^i exactly.
  std::cout << "\nLemma 1 check (interior pointer run lengths):\n";
  util::Table runs_table({"block", "expected run tau*(2m)^i", "observed runs (first 5)"});
  for (int i = 0; i < 3; ++i) {
    const auto segs = run_lengths(b_of[static_cast<std::size_t>(i)]);
    std::string obs;
    for (std::size_t j = 1; j < segs.size() && j <= 5; ++j) {
      obs += std::to_string(segs[j].len) + " ";
    }
    runs_table.add_row({std::to_string(i),
                        std::to_string(tau * util::ipow(6, static_cast<unsigned>(i))), obs});
  }
  runs_table.print(std::cout);
  return 0;
}
