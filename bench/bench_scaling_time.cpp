// Experiment E5: stabilisation-time scaling in f (Theorems 2/3 vs
// Corollary 1). The paper claims the recursion stabilises in O(f) rounds
// while the optimal-resilience single-level construction needs f^{O(f)}.
// We measure real executions for the recursion (worst observed over seeds
// and adversaries) and print the closed-form bounds for both schedules.
//
// Usage: bench_scaling_time [--seeds=N] [--deep]
#include <iostream>

#include "bench_common.hpp"
#include "boosting/planner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace synccount;
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int("seeds", 2));
  const bool deep = cli.get_bool("deep");
  const bench::Harness harness(cli);

  std::cout << "=== E5: stabilisation time vs resilience ===\n\n";

  bench::MeasureOptions opt;
  opt.seeds = seeds;
  opt.adversaries = {"split"};
  opt.stop_after_stable = 120;
  opt.margin = 100;

  util::Table table({"schedule", "f", "n", "T bound", "T measured mean (max)", "bound/f"});

  std::vector<double> fs, ts;
  std::vector<int> targets = {1, 3, 7};
  if (deep) targets.push_back(15);
  for (int f : targets) {
    const auto algo = boosting::build_plan(boosting::plan_practical(f, 2));
    const int n = algo->num_nodes();
    std::vector<bool> faulty;
    if (f == 1) {
      faulty = sim::faults_prefix(n, f);
    } else {
      faulty = sim::faults_block_concentrated(3, n / 3, (f - 1) / 2, f);
    }
    const auto m = bench::measure_stabilisation(harness, "E5-thm1-f" + std::to_string(f),
                                                algo, faulty, opt);
    const auto bound = *algo->stabilisation_bound();
    table.add_row({"Thm 1 recursion", std::to_string(f), std::to_string(n),
                   util::fmt_u64(bound), bench::fmt_rounds(m),
                   util::fmt_double(static_cast<double>(bound) / f, 0)});
    if (m.stabilised > 0) {
      fs.push_back(static_cast<double>(f));
      ts.push_back(m.stabilisation.max());
    }
  }

  // Corollary 1 rows: the bound explodes super-exponentially; only f=1 is
  // simulable.
  for (int F : {1, 2, 3, 4}) {
    const auto algo = boosting::build_plan(boosting::plan_corollary1(F, 2));
    std::string measured = "-";
    if (F == 1) {
      const auto m = bench::measure_stabilisation(harness, "E5-cor1-f1", algo,
                                                  sim::faults_prefix(4, 1), opt);
      measured = bench::fmt_rounds(m);
    }
    const auto bound = *algo->stabilisation_bound();
    table.add_row({"Cor. 1 (k=3F+1)", std::to_string(F), std::to_string(3 * F + 1),
                   util::fmt_u64(bound), measured,
                   util::fmt_double(static_cast<double>(bound) / F, 0)});
  }
  table.print(std::cout);

  const double slope = util::regression_slope(fs, ts);
  std::cout << "\nShape check: measured worst stabilisation of the recursion grows\n"
            << "roughly linearly in f (regression slope " << util::fmt_double(slope, 1)
            << " rounds/fault), while the Cor. 1 bound grows like f^{O(f)}\n"
            << "(2304, 25.2M, 1.5e11, ... for f = 1, 2, 3, ...).\n";
  return 0;
}
