// Shared helpers for the benchmark harnesses: repeated stabilisation
// measurements across seeds/adversaries/placements, wall-clock timing, and
// common CLI conventions (--seeds=N, --deep for the expensive sweeps).
#pragma once

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "sim/adversaries.hpp"
#include "sim/faults.hpp"
#include "sim/runner.hpp"
#include "util/math.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace synccount::bench {

struct Measurement {
  util::Summary stabilisation;  // observed stabilisation rounds
  int runs = 0;
  int stabilised_runs = 0;
  double wall_seconds = 0.0;
};

struct MeasureOptions {
  int seeds = 3;
  std::vector<std::string> adversaries = {"split"};
  std::uint64_t extra_rounds = 300;   // horizon = bound + extra
  std::uint64_t horizon_override = 0; // used when no bound exists
  std::uint64_t margin = 100;
  std::uint64_t stop_after_stable = 0;
};

inline Measurement measure_stabilisation(const counting::AlgorithmPtr& algo,
                                         const std::vector<bool>& faulty,
                                         const MeasureOptions& opt) {
  Measurement m;
  std::vector<double> samples;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& adv_name : opt.adversaries) {
    for (int s = 0; s < opt.seeds; ++s) {
      sim::RunConfig cfg;
      cfg.algo = algo;
      cfg.faulty = faulty;
      const auto bound = algo->stabilisation_bound();
      cfg.max_rounds = bound ? *bound + opt.extra_rounds
                             : (opt.horizon_override ? opt.horizon_override : 20000);
      cfg.seed = 0x9000 + static_cast<std::uint64_t>(s) * 131;
      cfg.stop_after_stable = opt.stop_after_stable;
      auto adv = sim::make_adversary(adv_name);
      const auto res = sim::run_execution(cfg, *adv, opt.margin);
      ++m.runs;
      if (res.stabilised) {
        ++m.stabilised_runs;
        samples.push_back(static_cast<double>(res.stabilisation_round));
      }
    }
  }
  m.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  m.stabilisation = util::summarize(std::move(samples));
  return m;
}

inline std::string fmt_rounds(const Measurement& m) {
  if (m.stabilised_runs == 0) return "-";
  return util::fmt_double(m.stabilisation.mean, 0) + " (max " +
         util::fmt_double(m.stabilisation.max, 0) + ")";
}

}  // namespace synccount::bench
