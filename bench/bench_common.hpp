// Shared harness for the benchmark binaries: every bench is a declarative
// spec builder. A bench constructs sim::ExperimentSpecs (data only -- no
// callbacks; algorithms travel as pointers or counting::AlgorithmSpec
// variants) and hands them to Harness::run, which owns everything
// cross-cutting: the engine shared by the process (--threads=N /
// SYNCCOUNT_THREADS), the declarative sink flags every bench accepts
// (--progress, --trace=FILE, --emit-spec=PREFIX), and the table-cell
// formatting helpers.
//
// Because specs are data, any bench experiment can be exported with
// --emit-spec=PREFIX and replayed, sharded or resumed later via
// `synccount_cli sweep --spec=PREFIX<label>.json` -- the bench binaries and
// the CLI are two front ends over one experiment representation.
#pragma once

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "counting/algorithm_spec.hpp"
#include "sim/engine.hpp"
#include "sim/experiment_io.hpp"
#include "sim/faults.hpp"
#include "sim/sink.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace synccount::bench {

// Thread count for a bench process: --threads=N beats SYNCCOUNT_THREADS
// beats hardware concurrency (0).
inline int thread_count(const util::Cli& cli) {
  if (cli.has("threads")) return static_cast<int>(cli.get_int("threads", 0));
  // synccount-lint: allow(nondet) -- documented SYNCCOUNT_THREADS override
  // for bench drivers; thread count never changes result bytes (engine
  // contract), only wall time.
  if (const char* env = std::getenv("SYNCCOUNT_THREADS")) return std::atoi(env);
  return 0;
}

// The engine every bench in this process shares (one thread pool).
inline const sim::Engine& engine(const util::Cli& cli) {
  static const sim::Engine eng(thread_count(cli));
  return eng;
}

class Harness {
 public:
  explicit Harness(const util::Cli& cli) : cli_(cli) {}

  const sim::Engine& engine() const { return bench::engine(cli_); }
  int threads() const { return engine().threads(); }

  // Runs one named experiment. `label` distinguishes the bench's experiments
  // in file names (trace files, emitted specs); `extra` carries in-process
  // sinks the bench needs itself (e.g. sim::RecordSink for output traces).
  // Common flags, applied to every experiment:
  //   --progress               per-group progress on stderr
  //   --trace=FILE             per-execution trace streamed to disk; `label`
  //                            is inserted before the extension so multiple
  //                            experiments never clobber one file
  //                            (--trace-format=jsonl|csv, --trace-outputs)
  //   --emit-spec=PREFIX       write PREFIX<label>.json (a synccount-spec
  //                            file; experiments whose algorithm cannot be
  //                            serialised warn and skip the file)
  sim::ExperimentResult run(const std::string& label, sim::ExperimentSpec spec,
                            const sim::SinkList& extra = {}) const {
    if (cli_.has("trace")) {
      sim::SinkConfig cfg;
      cfg.kind = sim::SinkConfig::Kind::kTrace;
      cfg.path = label_path(require_file_value("trace"), label);
      cfg.format = cli_.get_string("trace-format", "jsonl");
      cfg.outputs = cli_.get_bool("trace-outputs");
      // Validate here: bench mains have no catch-all, so a throwing
      // TraceSink constructor would abort instead of exiting cleanly.
      if (cfg.format != "jsonl" && cfg.format != "csv") {
        std::cerr << "unknown trace format: " << cfg.format << " (want jsonl|csv)\n";
        std::exit(2);
      }
      if (cfg.outputs && cfg.format == "csv") {
        std::cerr << "--trace-outputs requires --trace-format=jsonl\n";
        std::exit(2);
      }
      spec.sinks.push_back(std::move(cfg));
    }
    if (cli_.get_bool("progress")) {
      spec.sinks.push_back({sim::SinkConfig::Kind::kProgress, "", "jsonl", false});
    }
    if (cli_.has("emit-spec")) emit_spec(label, spec);
    const auto owned = sim::make_sinks(spec, sim::plan_shards(spec, 1, 0));
    return engine().run(spec, sim::plan_shards(spec, 1, 0), sim::sink_list(owned, extra));
  }

 private:
  // A bare `--trace` / `--emit-spec` parses as the boolean value "true";
  // writing files literally named "true..." is always a forgotten =VALUE.
  std::string require_file_value(const std::string& flag) const {
    const std::string value = cli_.get_string(flag, "");
    if (value.empty() || value == "true") {
      std::cerr << "--" << flag << " requires a value: --" << flag << "=PATH\n";
      std::exit(2);
    }
    return value;
  }

  // "tr.jsonl" + "E7 f=1" -> "tr-e7-f1.jsonl"
  static std::string slug(const std::string& label) {
    std::string s;
    for (const char c : label) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        s.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
      } else if (!s.empty() && s.back() != '-') {
        s.push_back('-');
      }
    }
    while (!s.empty() && s.back() == '-') s.pop_back();
    return s;
  }

  static std::string label_path(const std::string& path, const std::string& label) {
    const std::string tag = slug(label);
    if (tag.empty()) return path;
    const std::size_t dot = path.rfind('.');
    const std::size_t slash = path.find_last_of('/');
    if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
      return path + "-" + tag;
    }
    return path.substr(0, dot) + "-" + tag + path.substr(dot);
  }

  void emit_spec(const std::string& label, const sim::ExperimentSpec& spec) const {
    const std::string path = require_file_value("emit-spec") + slug(label) + ".json";
    try {
      std::ofstream out(path);
      if (!out.good()) {
        std::cerr << "warning: cannot write spec file " << path << "\n";
        return;
      }
      sim::write_spec_file(out, spec);
      std::cerr << "spec: " << path << "\n";
    } catch (const std::invalid_argument& e) {
      std::cerr << "warning: experiment '" << label << "' is not serialisable ("
                << e.what() << ")\n";
    }
  }

  const util::Cli& cli_;
};

struct MeasureOptions {
  int seeds = 3;
  std::vector<std::string> adversaries = {"split"};
  std::uint64_t extra_rounds = 300;   // horizon = bound + extra
  std::uint64_t horizon_override = 0; // used when no bound exists
  std::uint64_t margin = 100;
  std::uint64_t stop_after_stable = 0;
};

// One-placement spec for the classic "stabilisation of algo under faults"
// measurement; benches tweak the returned spec before running when needed.
inline sim::ExperimentSpec make_spec(const counting::AlgorithmPtr& algo,
                                     const std::vector<bool>& faulty,
                                     const MeasureOptions& opt) {
  sim::ExperimentSpec spec;
  spec.algo = algo;
  spec.placements = {{"", faulty}};
  spec.adversaries = opt.adversaries;
  spec.seeds = opt.seeds;
  spec.extra_rounds = opt.extra_rounds;
  spec.horizon_override = opt.horizon_override;
  spec.margin = opt.margin;
  spec.stop_after_stable = opt.stop_after_stable;
  return spec;
}

// Runs the spec and returns the overall aggregate (the common case where a
// bench table row is one fold over the whole grid).
inline sim::AggregateResult measure_stabilisation(const Harness& harness,
                                                  const std::string& label,
                                                  const counting::AlgorithmPtr& algo,
                                                  const std::vector<bool>& faulty,
                                                  const MeasureOptions& opt) {
  return harness.run(label, make_spec(algo, faulty, opt)).total;
}

inline std::string fmt_rounds(const sim::AggregateResult& agg) { return agg.fmt_rounds(); }

// "stabilised/runs" cell.
inline std::string fmt_rate(const sim::AggregateResult& agg) {
  return std::to_string(agg.stabilised) + "/" + std::to_string(agg.runs);
}

}  // namespace synccount::bench
