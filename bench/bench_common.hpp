// Shared helpers for the benchmark harnesses, all sitting on the batched
// experiment engine (sim/engine.hpp): spec builders for the common
// seeds x adversaries x placements sweeps, the engine instance shared by a
// bench process (--threads=N / SYNCCOUNT_THREADS), and table formatting.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace synccount::bench {

// Thread count for a bench process: --threads=N beats SYNCCOUNT_THREADS
// beats hardware concurrency (0).
inline int thread_count(const util::Cli& cli) {
  if (cli.has("threads")) return static_cast<int>(cli.get_int("threads", 0));
  if (const char* env = std::getenv("SYNCCOUNT_THREADS")) return std::atoi(env);
  return 0;
}

// The engine every bench in this process shares (one thread pool).
inline const sim::Engine& engine(const util::Cli& cli) {
  static const sim::Engine eng(thread_count(cli));
  return eng;
}

struct MeasureOptions {
  int seeds = 3;
  std::vector<std::string> adversaries = {"split"};
  std::uint64_t extra_rounds = 300;   // horizon = bound + extra
  std::uint64_t horizon_override = 0; // used when no bound exists
  std::uint64_t margin = 100;
  std::uint64_t stop_after_stable = 0;
};

// One-placement spec for the classic "stabilisation of algo under faults"
// measurement; benches tweak the returned spec before running when needed.
inline sim::ExperimentSpec make_spec(const counting::AlgorithmPtr& algo,
                                     const std::vector<bool>& faulty,
                                     const MeasureOptions& opt) {
  sim::ExperimentSpec spec;
  spec.algo = algo;
  spec.placements = {{"", faulty}};
  spec.adversaries = opt.adversaries;
  spec.seeds = opt.seeds;
  spec.extra_rounds = opt.extra_rounds;
  spec.horizon_override = opt.horizon_override;
  spec.margin = opt.margin;
  spec.stop_after_stable = opt.stop_after_stable;
  return spec;
}

// Runs the spec and returns the overall aggregate (the common case where a
// bench table row is one fold over the whole grid).
inline sim::AggregateResult measure_stabilisation(const sim::Engine& eng,
                                                  const counting::AlgorithmPtr& algo,
                                                  const std::vector<bool>& faulty,
                                                  const MeasureOptions& opt) {
  return eng.run(make_spec(algo, faulty, opt)).total;
}

inline std::string fmt_rounds(const sim::AggregateResult& agg) { return agg.fmt_rounds(); }

// "stabilised/runs" cell.
inline std::string fmt_rate(const sim::AggregateResult& agg) {
  return std::to_string(agg.stabilised) + "/" + std::to_string(agg.runs);
}

}  // namespace synccount::bench
