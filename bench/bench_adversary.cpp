// Experiment E10: adversary and fault-placement ablation. Stabilisation time
// of the Theorem 1 recursion (A(12,3), counting mod 16) under every adversary
// strategy in the library crossed with the interesting fault placements.
// The bound must hold against all of them; the measured spread shows which
// attacks actually hurt.
//
// Usage: bench_adversary [--seeds=N] [--f=3]
#include <iostream>

#include "bench_common.hpp"
#include "boosting/leader_split_adversary.hpp"
#include "boosting/planner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace synccount;
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int("seeds", 3));
  const int f = static_cast<int>(cli.get_int("f", 3));

  const auto algo = boosting::build_plan(boosting::plan_practical(f, 16));
  const int n = algo->num_nodes();
  const int k_top = 3;
  const int block = n / k_top;
  const int f_inner = (f - 1) / 2;

  std::cout << "=== E10: adversary x fault-placement ablation on A(" << n << ", " << f
            << ") ===\nTheorem 1 bound: " << *algo->stabilisation_bound() << " rounds.\n\n";

  struct Placement {
    std::string name;
    std::vector<bool> faulty;
  };
  const std::vector<Placement> placements = {
      {"spread", sim::faults_spread(n, f)},
      {"block-concentrated", sim::faults_block_concentrated(k_top, block, f_inner, f)},
      {"leader-blocks", sim::faults_leader_blocks(k_top, block, f_inner, f)},
  };

  util::Table table({"adversary", "placement", "stabilised", "T measured mean (max)",
                     "within bound"});
  for (const auto& adv_name : sim::adversary_names()) {
    for (const auto& pl : placements) {
      bench::MeasureOptions opt;
      opt.seeds = seeds;
      opt.adversaries = {adv_name};
      opt.stop_after_stable = 120;
      opt.margin = 100;
      const auto m = bench::measure_stabilisation(algo, pl.faulty, opt);
      const bool ok = m.stabilised_runs == m.runs &&
                      m.stabilisation.max <= static_cast<double>(*algo->stabilisation_bound());
      table.add_row({adv_name, pl.name,
                     std::to_string(m.stabilised_runs) + "/" + std::to_string(m.runs),
                     bench::fmt_rounds(m), ok ? "yes" : "NO"});
    }
  }

  // The construction-aware attack (decodes votes, splits leader majorities,
  // impersonates kings) is built per algorithm and benched separately.
  if (const auto boosted = std::dynamic_pointer_cast<const boosting::BoostedCounter>(algo)) {
    for (const auto& pl : placements) {
      std::vector<double> samples;
      int stab = 0;
      for (int s = 0; s < seeds; ++s) {
        boosting::LeaderSplitAdversary adv(boosted);
        sim::RunConfig cfg;
        cfg.algo = algo;
        cfg.faulty = pl.faulty;
        cfg.max_rounds = *algo->stabilisation_bound() + 300;
        cfg.seed = 0x9000 + static_cast<std::uint64_t>(s) * 131;
        cfg.stop_after_stable = 120;
        const auto res = sim::run_execution(cfg, adv, 100);
        if (res.stabilised) {
          ++stab;
          samples.push_back(static_cast<double>(res.stabilisation_round));
        }
      }
      const auto summary = util::summarize(samples);
      const bool ok = stab == seeds &&
                      summary.max <= static_cast<double>(*algo->stabilisation_bound());
      table.add_row({"leader-split", pl.name,
                     std::to_string(stab) + "/" + std::to_string(seeds),
                     util::fmt_double(summary.mean, 0) + " (max " +
                         util::fmt_double(summary.max, 0) + ")",
                     ok ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  std::cout << "\nAll cells must stabilise within the bound; 'echo' (a protocol-following\n"
            << "fault) and 'silent' are the benign ends; vote-splitting, lookahead and\n"
            << "the construction-aware 'leader-split' are the aggressive ends.\n";
  return 0;
}
