// Experiment E10: adversary and fault-placement ablation. Stabilisation time
// of the Theorem 1 recursion (A(12,3), counting mod 16) under every adversary
// strategy in the library crossed with the interesting fault placements.
// The bound must hold against all of them; the measured spread shows which
// attacks actually hurt.
//
// The whole ablation is ONE engine sweep: the adversary axis covers the
// library strategies plus the construction-aware "leader-split" attack,
// installed through the spec's adversary factory.
//
// Usage: bench_adversary [--seeds=N] [--f=3] [--threads=N]
#include <iostream>

#include "bench_common.hpp"
#include "boosting/leader_split_adversary.hpp"
#include "boosting/planner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace synccount;
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int("seeds", 3));
  const int f = static_cast<int>(cli.get_int("f", 3));

  const auto algo = boosting::build_plan(boosting::plan_practical(f, 16));
  const int n = algo->num_nodes();
  const int k_top = 3;
  const int block = n / k_top;
  const int f_inner = (f - 1) / 2;

  std::cout << "=== E10: adversary x fault-placement ablation on A(" << n << ", " << f
            << ") ===\nTheorem 1 bound: " << *algo->stabilisation_bound() << " rounds.\n\n";

  sim::ExperimentSpec spec;
  spec.algo = algo;
  spec.placements = {
      {"spread", sim::faults_spread(n, f)},
      {"block-concentrated", sim::faults_block_concentrated(k_top, block, f_inner, f)},
      {"leader-blocks", sim::faults_leader_blocks(k_top, block, f_inner, f)},
  };
  spec.adversaries = sim::adversary_names();
  // The construction-aware attack (decodes votes, splits leader majorities,
  // impersonates kings) exists only for the boosted construction.
  if (const auto boosted = std::dynamic_pointer_cast<const boosting::BoostedCounter>(algo)) {
    spec.adversaries.push_back("leader-split");
    spec.adversary_factory =
        [boosted](const std::string& name) -> std::unique_ptr<sim::Adversary> {
      if (name == "leader-split") {
        return std::make_unique<boosting::LeaderSplitAdversary>(boosted);
      }
      return sim::make_adversary(name);
    };
  }
  spec.seeds = seeds;
  spec.stop_after_stable = 120;
  spec.margin = 100;

  const bench::Harness harness(cli);
  const auto result = harness.run("E10", spec);

  util::Table table({"adversary", "placement", "stabilised", "T measured mean (max)",
                     "within bound"});
  for (std::size_t a = 0; a < spec.adversaries.size(); ++a) {
    for (std::size_t p = 0; p < spec.placements.size(); ++p) {
      const auto m = result.aggregate(a, p);
      const bool ok = m.stabilised == m.runs &&
                      m.stabilisation.max() <= static_cast<double>(*algo->stabilisation_bound());
      table.add_row({spec.adversaries[a], spec.placements[p].name, bench::fmt_rate(m),
                     bench::fmt_rounds(m), ok ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  std::cout << "\nAll cells must stabilise within the bound; 'echo' (a protocol-following\n"
            << "fault) and 'silent' are the benign ends; vote-splitting, lookahead and\n"
            << "the construction-aware 'leader-split' are the aggressive ends.\n"
            << "(" << result.cells.size() << " executions in "
            << util::fmt_double(result.wall_seconds, 2) << "s on "
            << harness.threads() << " threads)\n";
  return 0;
}
