// Experiment E11: microbenchmarks (google-benchmark) for the hot paths:
// bit-packed state access, majority voting, phase-king steps, boosted
// transitions at several sizes, whole simulator rounds, execution backends
// (scalar vs batched vs bit-sliced), the exact verifier and SAT unit
// propagation.
//
// `bench_micro --json [path]` skips google-benchmark and runs the perf-smoke
// comparison of the execution backends on the Table 1 instance, writing
// BENCH_batch.json (ns per node-round, scalar vs batched, per adversary) so
// CI records the perf trajectory.
#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>

#include "boosting/planner.hpp"
#include "sim/engine.hpp"
#include "counting/trivial.hpp"
#include "phaseking/phase_king.hpp"
#include "sat/solver.hpp"
#include "sim/adversaries.hpp"
#include "sim/batch_runner.hpp"
#include "sim/faults.hpp"
#include "sim/runner.hpp"
#include "synthesis/known_tables.hpp"
#include "synthesis/verifier.hpp"
#include "util/rng.hpp"

namespace {

using namespace synccount;

void BM_BitVecSetGet(benchmark::State& state) {
  util::BitVec v;
  std::uint64_t x = 0;
  for (auto _ : state) {
    v.set_bits(37, 23, x++);
    benchmark::DoNotOptimize(v.get_bits(37, 23));
  }
}
BENCHMARK(BM_BitVecSetGet);

void BM_PhaseKingStep(benchmark::State& state) {
  const int N = static_cast<int>(state.range(0));
  const phaseking::Params p{N, (N - 1) / 3, 64};
  std::vector<std::uint64_t> received(static_cast<std::size_t>(N));
  util::Rng rng(1);
  for (auto& a : received) a = rng.next_below(64);
  const phaseking::Registers own{received[0], true};
  int index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(phaseking::step(p, index, 0, own, received));
    index = (index + 1) % p.tau();
  }
}
BENCHMARK(BM_PhaseKingStep)->Arg(4)->Arg(36)->Arg(108);

void BM_BoostedTransition(benchmark::State& state) {
  const int f = static_cast<int>(state.range(0));
  const auto algo = boosting::build_plan(boosting::plan_practical(f, 16));
  const auto n = static_cast<std::size_t>(algo->num_nodes());
  util::Rng rng(2);
  std::vector<counting::State> received(n);
  for (auto& s : received) s = counting::arbitrary_state(*algo, rng);
  counting::TransitionContext ctx{&rng};
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo->transition(i, received, ctx));
    i = (i + 1) % algo->num_nodes();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BoostedTransition)->Arg(1)->Arg(3)->Arg(7);

void BM_SimulatorRound(benchmark::State& state) {
  const int f = static_cast<int>(state.range(0));
  const auto algo = boosting::build_plan(boosting::plan_practical(f, 16));
  const int n = algo->num_nodes();
  // Measure rounds/second by running fixed-length chunks.
  for (auto _ : state) {
    sim::RunConfig cfg;
    cfg.algo = algo;
    cfg.faulty = sim::faults_prefix(n, f);
    cfg.max_rounds = 32;
    cfg.seed = 7;
    auto adv = sim::make_adversary("split");
    benchmark::DoNotOptimize(sim::run_execution(cfg, *adv, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_SimulatorRound)->Arg(1)->Arg(3)->Arg(7)->Unit(benchmark::kMillisecond);

void BM_VerifierEmbeddedTable(benchmark::State& state) {
  const counting::TableAlgorithm algo(synthesis::known_table_4_1_3states());
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesis::verify(algo));
  }
  state.SetLabel("exact game analysis, n=4 f=1 |X|=3");
}
BENCHMARK(BM_VerifierEmbeddedTable)->Unit(benchmark::kMillisecond);

void BM_SatPigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sat::Solver s;
    auto var = [&](int p, int h) { return p * holes + h + 1; };
    for (int p = 0; p < holes + 1; ++p) {
      std::vector<sat::ExtLit> clause;
      for (int h = 0; h < holes; ++h) clause.push_back(var(p, h));
      s.add_clause(clause);
    }
    for (int h = 0; h < holes; ++h) {
      for (int p1 = 0; p1 < holes + 1; ++p1) {
        for (int p2 = p1 + 1; p2 < holes + 1; ++p2) {
          s.add_binary(-var(p1, h), -var(p2, h));
        }
      }
    }
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SatPigeonhole)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_ArbitraryState(benchmark::State& state) {
  const auto algo = boosting::build_plan(boosting::plan_practical(7, 16));
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(counting::arbitrary_state(*algo, rng));
  }
}
BENCHMARK(BM_ArbitraryState);

// --- Execution backends: scalar vs batched (flat and composed) ---------------

struct BackendCase {
  counting::AlgorithmPtr algo;
  std::string adversary;
  std::vector<bool> faulty;
  std::uint64_t rounds;
  std::vector<std::uint64_t> seeds;
};

BackendCase table1_case(const std::string& adversary, std::size_t n_seeds,
                        std::uint64_t rounds) {
  BackendCase c;
  c.algo = std::make_shared<counting::TableAlgorithm>(synthesis::known_table_4_1_3states());
  c.adversary = adversary;
  c.faulty = sim::faults_spread(4, 1);
  c.rounds = rounds;
  c.seeds.resize(n_seeds);
  for (std::size_t i = 0; i < n_seeds; ++i) c.seeds[i] = 0xBE9C + i * 31;
  return c;
}

// The composed-backend acceptance instance: the practical f = 2 boosted
// counter (two levels over the trivial base, N = 12).
BackendCase boosted_case(const std::string& adversary, std::size_t n_seeds,
                         std::uint64_t rounds) {
  BackendCase c;
  c.algo = boosting::build_plan(boosting::plan_practical(2, 10));
  c.adversary = adversary;
  c.faulty = sim::faults_spread(c.algo->num_nodes(), 2);
  c.rounds = rounds;
  c.seeds.resize(n_seeds);
  for (std::size_t i = 0; i < n_seeds; ++i) c.seeds[i] = 0xB005 + i * 37;
  return c;
}

// The n >= 32 composed instance: the practical f = 7 tower (three boosting
// levels over the trivial base, N = 36). Exercises the profiled composed
// batch path at a size where the scalar runner's per-(receiver, sender)
// forging and per-node tower transitions dominate.
BackendCase large_case(const std::string& adversary, std::size_t n_seeds,
                       std::uint64_t rounds) {
  BackendCase c;
  c.algo = boosting::build_plan(boosting::plan_practical(7, 10));
  c.adversary = adversary;
  c.faulty = sim::faults_spread(c.algo->num_nodes(), 7);
  c.rounds = rounds;
  c.seeds.resize(n_seeds);
  for (std::size_t i = 0; i < n_seeds; ++i) c.seeds[i] = 0x1A26E + i * 41;
  return c;
}

// Node-rounds of work in one pass over every seed of the case (per correct
// node, matching the scalar runner's transition count).
double node_rounds(const BackendCase& c) {
  return static_cast<double>(c.seeds.size()) * static_cast<double>(c.rounds) *
         static_cast<double>(c.algo->num_nodes() - sim::fault_count(c.faulty));
}

void run_scalar_case(const BackendCase& c) {
  for (const auto seed : c.seeds) {
    sim::RunConfig cfg;
    cfg.algo = c.algo;
    cfg.faulty = c.faulty;
    cfg.max_rounds = c.rounds;
    cfg.seed = seed;
    auto adv = sim::make_adversary(c.adversary);
    benchmark::DoNotOptimize(sim::run_execution(cfg, *adv, 1));
  }
}

void run_batch_case(const BackendCase& c, sim::BatchKernel kernel) {
  sim::BatchConfig bc;
  bc.algo = c.algo;
  bc.faulty = c.faulty;
  bc.max_rounds = c.rounds;
  bc.margin = 1;
  bc.adversary = [&c] { return sim::make_adversary(c.adversary); };
  bc.seeds = c.seeds;
  bc.kernel = kernel;
  benchmark::DoNotOptimize(sim::run_batch(bc));
}

void BM_TableBackendScalar(benchmark::State& state) {
  const auto c = table1_case("silent", 64, 256);
  for (auto _ : state) run_scalar_case(c);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * node_rounds(c)));
  state.SetLabel("items = node-rounds, Table 1 n=4 f=1 |X|=3");
}
BENCHMARK(BM_TableBackendScalar)->Unit(benchmark::kMillisecond);

void BM_TableBackendSoA(benchmark::State& state) {
  const auto c = table1_case("silent", 64, 256);
  for (auto _ : state) run_batch_case(c, sim::BatchKernel::kSoA);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * node_rounds(c)));
}
BENCHMARK(BM_TableBackendSoA)->Unit(benchmark::kMillisecond);

void BM_TableBackendBitSliced(benchmark::State& state) {
  const auto c = table1_case("silent", 64, 256);
  for (auto _ : state) run_batch_case(c, sim::BatchKernel::kBitSliced);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * node_rounds(c)));
}
BENCHMARK(BM_TableBackendBitSliced)->Unit(benchmark::kMillisecond);

void BM_ComposedBackendScalar(benchmark::State& state) {
  const auto c = boosted_case("silent", 64, 64);
  for (auto _ : state) run_scalar_case(c);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * node_rounds(c)));
  state.SetLabel("items = node-rounds, practical(f=2, C=10), N=12");
}
BENCHMARK(BM_ComposedBackendScalar)->Unit(benchmark::kMillisecond);

void BM_ComposedBackendBatched(benchmark::State& state) {
  const auto c = boosted_case("silent", 64, 64);
  for (auto _ : state) run_batch_case(c, sim::BatchKernel::kAuto);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * node_rounds(c)));
}
BENCHMARK(BM_ComposedBackendBatched)->Unit(benchmark::kMillisecond);

// --- Aggregation memory probe (--rss-probe, re-exec'd child) -----------------
//
// Peak RSS of folding a synthetic million-cell sweep's RunResults into
// per-group aggregates plus a grand total -- the exact-vs-sketch memory
// story of ROADMAP item 3, measured rather than asserted. Runs in a child
// process re-exec'd from run_json_smoke (NOT forked: a forked child inherits
// the parent's already-touched pages and ru_maxrss high-water mark, which
// would drown the signal).

// The fold a sweep's engine performs, on synthetic results: `groups` group
// aggregates of `cells` runs each, merged into one total in group order.
// Returns getrusage peak RSS in KiB.
long run_rss_probe(util::StatsMode mode, std::size_t cells, std::size_t groups) {
  sim::AggregateResult total(mode);
  util::Rng rng(0xA99);
  for (std::size_t g = 0; g < groups; ++g) {
    sim::AggregateResult agg(mode);
    for (std::size_t i = 0; i < cells; ++i) {
      sim::RunResult r;
      r.rounds = 200 + rng.next_below(100);
      r.stabilised = (rng.next_below(100) != 0);
      r.stabilisation_round = 20 + rng.next_below(500);
      r.max_pulls_per_round = 1 + rng.next_below(4);
      r.avg_pulls_per_round =
          1.0 + static_cast<double>(rng.next_below(1000)) / 1000.0;
      agg.fold(r);
    }
    total.merge(agg);
  }
  // Consume the aggregate the way a report does, so the fold (and, in exact
  // mode, the quantile's sort scratch) is part of what gets measured.
  benchmark::DoNotOptimize(total.stabilisation.quantile(0.5));
  benchmark::DoNotOptimize(total.rounds.summary());
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;  // KiB on Linux
}

// Parses "--rss-probe=<exact|sketch>:<cells>:<groups>", runs the probe and
// prints the peak RSS KiB on stdout. Returns the process exit code.
int run_rss_probe_main(const std::string& arg) {
  std::istringstream in(arg);
  std::string mode_name, cells_s, groups_s;
  if (!std::getline(in, mode_name, ':') || !std::getline(in, cells_s, ':') ||
      !std::getline(in, groups_s) || (mode_name != "exact" && mode_name != "sketch")) {
    std::cerr << "bad --rss-probe argument: " << arg
              << " (want <exact|sketch>:<cells>:<groups>)\n";
    return 2;
  }
  const auto mode =
      mode_name == "sketch" ? util::StatsMode::kSketch : util::StatsMode::kExact;
  const auto cells = static_cast<std::size_t>(std::strtoull(cells_s.c_str(), nullptr, 10));
  const auto groups = static_cast<std::size_t>(std::strtoull(groups_s.c_str(), nullptr, 10));
  if (cells == 0 || groups == 0) {
    std::cerr << "--rss-probe needs cells > 0 and groups > 0\n";
    return 2;
  }
  std::cout << run_rss_probe(mode, cells, groups) << "\n";
  return 0;
}

// Re-execs this binary as an RSS probe child and returns its reported peak
// RSS KiB, or -1 on any failure (missing exe, crash, unparsable output).
long probe_rss_child(const std::string& exe, const std::string& mode, std::size_t cells,
                     std::size_t groups) {
  const std::string cmd = "'" + exe + "' --rss-probe=" + mode + ":" +
                          std::to_string(cells) + ":" + std::to_string(groups);
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return -1;
  char buf[128] = {0};
  const bool got = std::fgets(buf, sizeof(buf), pipe) != nullptr;
  const int rc = pclose(pipe);
  if (!got || rc != 0) return -1;
  return std::strtol(buf, nullptr, 10);
}

// --- Perf smoke (--json): records the backend trajectory for CI -------------

double seconds_of(const std::function<void()>& fn, int reps) {
  // One warm-up, then the best of `reps` timed passes (robust to CI noise).
  fn();
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
  }
  return best;
}

struct SmokeInstance {
  std::string name;
  std::function<BackendCase(const std::string&)> make_case;
};

int run_json_smoke(const std::string& exe, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  const std::vector<SmokeInstance> instances = {
      {"table1 n=4 f=1 c=2 |X|=3, 1 Byzantine (spread)",
       [](const std::string& adv) { return table1_case(adv, 256, 512); }},
      {"boosted practical(f=2, C=10) N=12, 2 Byzantine (spread)",
       [](const std::string& adv) { return boosted_case(adv, 64, 256); }},
      {"boosted practical(f=7, C=10) N=36, 7 Byzantine (spread)",
       [](const std::string& adv) { return large_case(adv, 64, 64); }},
  };
  out << "{\n  \"instances\": [";
  bool first_instance = true;
  for (const auto& inst : instances) {
    // The recorded workload metadata comes from the case actually measured.
    const auto shape = inst.make_case("silent");
    out << (first_instance ? "" : ",") << "\n    {\"instance\": \"" << inst.name
        << "\",\n     \"seeds\": " << shape.seeds.size() << ", \"rounds\": " << shape.rounds
        << ",\n     \"results\": [";
    std::cout << "=== " << inst.name << " ===\n";
    bool first = true;
    for (const std::string adversary : {"silent", "split"}) {
      const auto c = inst.make_case(adversary);
      const double nr = node_rounds(c);
      const double scalar_s = seconds_of([&c] { run_scalar_case(c); }, 3);
      const double batch_s =
          seconds_of([&c] { run_batch_case(c, sim::BatchKernel::kAuto); }, 3);
      const double scalar_ns = 1e9 * scalar_s / nr;
      const double batch_ns = 1e9 * batch_s / nr;
      out << (first ? "" : ",") << "\n      {\"adversary\": \"" << adversary
          << "\", \"scalar_ns_per_node_round\": " << scalar_ns
          << ", \"batch_ns_per_node_round\": " << batch_ns
          << ", \"speedup\": " << scalar_ns / batch_ns << "}";
      std::cout << adversary << ": scalar " << scalar_ns << " ns/node-round, batched "
                << batch_ns << " ns/node-round, speedup " << scalar_ns / batch_ns
                << "x\n";
      first = false;
    }
    out << "\n     ]}";
    first_instance = false;
  }
  out << "\n  ],\n";

  // Aggregation memory: peak RSS of the per-group fold of a synthetic
  // million-cell sweep (8 groups x 131072 cells), exact vs sketch, each in a
  // fresh child process. check_perf_smoke.py gates on rss_ratio.
  const std::size_t agg_cells = 131072;
  const std::size_t agg_groups = 8;
  // A 1-cell null probe measures the child's load-time floor (binary +
  // runtime pages, ~3.6 MiB); the aggregation layer's cost is the peak above
  // it, otherwise the floor masks the sketch's real footprint in the ratio.
  const long base_kb = probe_rss_child(exe, "exact", 1, 1);
  const long exact_kb = probe_rss_child(exe, "exact", agg_cells, agg_groups);
  const long sketch_kb = probe_rss_child(exe, "sketch", agg_cells, agg_groups);
  if (base_kb <= 0 || exact_kb <= base_kb || sketch_kb <= base_kb) {
    std::cerr << "aggregation RSS probe failed (baseline " << base_kb << " KiB, exact "
              << exact_kb << " KiB, sketch " << sketch_kb << " KiB)\n";
    return 1;
  }
  const double ratio = static_cast<double>(sketch_kb - base_kb) /
                       static_cast<double>(exact_kb - base_kb);
  out << "  \"aggregation\": {\"cells_per_group\": " << agg_cells
      << ", \"groups\": " << agg_groups << ", \"baseline_peak_rss_kb\": " << base_kb
      << ", \"exact_peak_rss_kb\": " << exact_kb
      << ", \"sketch_peak_rss_kb\": " << sketch_kb << ", \"rss_ratio\": " << ratio
      << "}\n}\n";
  std::cout << "aggregation (" << agg_groups << " groups x " << agg_cells
            << " cells): peak RSS baseline " << base_kb << " KiB, exact " << exact_kb
            << " KiB, sketch " << sketch_kb << " KiB, net ratio " << ratio << "\n";
  std::cout << "wrote " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rss-probe=", 12) == 0) {
      return run_rss_probe_main(argv[i] + 12);
    }
    if (std::strcmp(argv[i], "--json") == 0) {
      return run_json_smoke(argv[0], i + 1 < argc ? argv[i + 1] : "BENCH_batch.json");
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
