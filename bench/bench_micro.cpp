// Experiment E11: microbenchmarks (google-benchmark) for the hot paths:
// bit-packed state access, majority voting, phase-king steps, boosted
// transitions at several sizes, whole simulator rounds, the exact verifier
// and SAT unit propagation.
#include <benchmark/benchmark.h>

#include "boosting/planner.hpp"
#include "counting/trivial.hpp"
#include "phaseking/phase_king.hpp"
#include "sat/solver.hpp"
#include "sim/adversaries.hpp"
#include "sim/faults.hpp"
#include "sim/runner.hpp"
#include "synthesis/known_tables.hpp"
#include "synthesis/verifier.hpp"
#include "util/rng.hpp"

namespace {

using namespace synccount;

void BM_BitVecSetGet(benchmark::State& state) {
  util::BitVec v;
  std::uint64_t x = 0;
  for (auto _ : state) {
    v.set_bits(37, 23, x++);
    benchmark::DoNotOptimize(v.get_bits(37, 23));
  }
}
BENCHMARK(BM_BitVecSetGet);

void BM_PhaseKingStep(benchmark::State& state) {
  const int N = static_cast<int>(state.range(0));
  const phaseking::Params p{N, (N - 1) / 3, 64};
  std::vector<std::uint64_t> received(static_cast<std::size_t>(N));
  util::Rng rng(1);
  for (auto& a : received) a = rng.next_below(64);
  const phaseking::Registers own{received[0], true};
  int index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(phaseking::step(p, index, 0, own, received));
    index = (index + 1) % p.tau();
  }
}
BENCHMARK(BM_PhaseKingStep)->Arg(4)->Arg(36)->Arg(108);

void BM_BoostedTransition(benchmark::State& state) {
  const int f = static_cast<int>(state.range(0));
  const auto algo = boosting::build_plan(boosting::plan_practical(f, 16));
  const auto n = static_cast<std::size_t>(algo->num_nodes());
  util::Rng rng(2);
  std::vector<counting::State> received(n);
  for (auto& s : received) s = counting::arbitrary_state(*algo, rng);
  counting::TransitionContext ctx{&rng};
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo->transition(i, received, ctx));
    i = (i + 1) % algo->num_nodes();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BoostedTransition)->Arg(1)->Arg(3)->Arg(7);

void BM_SimulatorRound(benchmark::State& state) {
  const int f = static_cast<int>(state.range(0));
  const auto algo = boosting::build_plan(boosting::plan_practical(f, 16));
  const int n = algo->num_nodes();
  // Measure rounds/second by running fixed-length chunks.
  for (auto _ : state) {
    sim::RunConfig cfg;
    cfg.algo = algo;
    cfg.faulty = sim::faults_prefix(n, f);
    cfg.max_rounds = 32;
    cfg.seed = 7;
    auto adv = sim::make_adversary("split");
    benchmark::DoNotOptimize(sim::run_execution(cfg, *adv, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_SimulatorRound)->Arg(1)->Arg(3)->Arg(7)->Unit(benchmark::kMillisecond);

void BM_VerifierEmbeddedTable(benchmark::State& state) {
  const counting::TableAlgorithm algo(synthesis::known_table_4_1_3states());
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesis::verify(algo));
  }
  state.SetLabel("exact game analysis, n=4 f=1 |X|=3");
}
BENCHMARK(BM_VerifierEmbeddedTable)->Unit(benchmark::kMillisecond);

void BM_SatPigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sat::Solver s;
    auto var = [&](int p, int h) { return p * holes + h + 1; };
    for (int p = 0; p < holes + 1; ++p) {
      std::vector<sat::ExtLit> clause;
      for (int h = 0; h < holes; ++h) clause.push_back(var(p, h));
      s.add_clause(clause);
    }
    for (int h = 0; h < holes; ++h) {
      for (int p1 = 0; p1 < holes + 1; ++p1) {
        for (int p2 = p1 + 1; p2 < holes + 1; ++p2) {
          s.add_binary(-var(p1, h), -var(p2, h));
        }
      }
    }
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SatPigeonhole)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_ArbitraryState(benchmark::State& state) {
  const auto algo = boosting::build_plan(boosting::plan_practical(7, 16));
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(counting::arbitrary_state(*algo, rng));
  }
}
BENCHMARK(BM_ArbitraryState);

}  // namespace

BENCHMARK_MAIN();
