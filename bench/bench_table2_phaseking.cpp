// Experiment E4: exercise the Table 2 instruction sets standalone -- the
// self-stabilising phase king. For each resilience F we run the full cycle
// of tau = 3(F+2) instruction sets from adversarial register states with F
// Byzantine nodes and report: rounds until agreement (Lemma 4 predicts it
// happens within the first complete honest-king phase), persistence after
// agreement (Lemma 5), and the per-round register-bit traffic.
//
// E4b runs the same instruction sets *in situ*: the top level of every
// boosted counter executes exactly Table 2, so the practical plans are swept
// through the experiment engine (composed batched backend) and their
// stabilisation confirms Lemmas 4-5 inside the full construction.
//
// Usage: bench_table2_phaseking [--trials=N] [--max-f=F] [--threads=N]
#include <iostream>

#include "bench_common.hpp"
#include "boosting/planner.hpp"
#include "phaseking/consensus.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace synccount;
  using phaseking::kInfinity;
  using phaseking::Registers;

  const util::Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 200));
  const int max_f = static_cast<int>(cli.get_int("max-f", 5));

  std::cout << "=== Table 2 (reproduction): the self-stabilising phase king ===\n"
            << "Each trial starts from adversarial registers and runs 2*tau rounds\n"
            << "of instruction sets I_0..I_{tau-1} with F equivocating nodes.\n\n";

  util::Table table({"F", "N=3F+1", "tau=3(F+2)", "agreed within tau", "mean rounds",
                     "p90 rounds", "persistence violations", "a-bits/node/round"});

  for (int F = 1; F <= max_f; ++F) {
    const int N = 3 * F + 1;
    const std::uint64_t C = 16;
    const phaseking::Params p{N, F, C};
    util::Rng rng(0xF00 + static_cast<std::uint64_t>(F));

    int agreed_within_tau = 0;
    int persistence_violations = 0;
    std::vector<double> agree_round;

    for (int t = 0; t < trials; ++t) {
      std::vector<bool> faulty(static_cast<std::size_t>(N), false);
      for (int i = 0; i < F; ++i) {
        for (;;) {
          const auto v = rng.next_below(static_cast<std::uint64_t>(N));
          if (!faulty[v]) {
            faulty[v] = true;
            break;
          }
        }
      }
      std::vector<Registers> init(static_cast<std::size_t>(N));
      for (auto& r : init) {
        r.a = rng.next_bool(0.25) ? kInfinity : rng.next_below(C);
        r.d = rng.next_bool();
      }
      const auto byz = [&rng, C](int, int, int) -> std::uint64_t {
        return rng.next_below(C + 2);  // junk, sometimes decoding to infinity
      };
      const int total = 2 * p.tau();
      const auto trace = run_phase_king(p, init, faulty, byz, 0, total);

      int first_agree = -1;
      for (int r = 0; r <= total; ++r) {
        if (agreed(p, trace.regs[static_cast<std::size_t>(r)], faulty)) {
          first_agree = r;
          break;
        }
      }
      if (first_agree >= 0 && first_agree <= p.tau()) ++agreed_within_tau;
      if (first_agree >= 0) {
        agree_round.push_back(static_cast<double>(first_agree));
        // Lemma 5: once agreed, the common value increments forever.
        std::uint64_t expect = ~0ULL;
        for (int r = first_agree; r <= total; ++r) {
          std::uint64_t val = ~0ULL;
          bool ok = true;
          for (int v = 0; v < N; ++v) {
            if (faulty[static_cast<std::size_t>(v)]) continue;
            const auto& reg = trace.regs[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)];
            if (reg.a == kInfinity || (val != ~0ULL && reg.a != val)) ok = false;
            val = reg.a;
          }
          if (!ok || (expect != ~0ULL && val != expect)) {
            ++persistence_violations;
            break;
          }
          expect = (val + 1) % C;
        }
      }
    }
    const auto s = util::summarize(agree_round);
    table.add_row({std::to_string(F), std::to_string(N), std::to_string(p.tau()),
                   std::to_string(agreed_within_tau) + "/" + std::to_string(trials),
                   util::fmt_double(s.mean, 1), util::fmt_double(s.p90, 1),
                   std::to_string(persistence_violations),
                   std::to_string(phaseking::a_bits(C) + 1)});
  }
  table.print(std::cout);
  std::cout << "\nLemma 4 predicts agreement within one complete honest-king phase; a\n"
            << "full tau-cycle always contains one, so 'agreed within tau' should be\n"
            << "trials/trials, and 'persistence violations' (Lemma 5) should be 0.\n";

  std::cout << "\n=== E4b: Table 2 in situ -- boosted counters via the engine ===\n"
            << "The top level of each practical plan executes exactly the I_R\n"
            << "instruction sets; the sweep runs on the composed batched backend.\n\n";
  {
    util::Table t2({"f", "plan", "N", "tau", "batched cells", "stabilised", "T mean (max)"});
    const bench::Harness harness(cli);
    for (int f = 1; f <= std::min(max_f, 3); ++f) {
      const auto plan = boosting::plan_practical(f, 16);
      const auto algo = boosting::build_plan(plan);
      sim::ExperimentSpec spec;
      spec.algo = algo;
      spec.adversaries = {"silent", "targeted-vote"};
      spec.placements = {{"spread", sim::faults_spread(algo->num_nodes(), f)}};
      spec.seeds = std::max(1, trials / 10);
      spec.margin = 100;
      spec.stop_after_stable = 120;
      const auto res = harness.run("E4b-f" + std::to_string(f), spec);
      t2.add_row({std::to_string(f), plan.label, std::to_string(algo->num_nodes()),
                  std::to_string(3 * (f + 2)), std::to_string(res.batched_cells),
                  bench::fmt_rate(res.total), bench::fmt_rounds(res.total)});
    }
    t2.print(std::cout);
    std::cout << "\nEvery run that stabilises re-confirms Lemma 4 (agreement established)\n"
              << "and Lemma 5 (agreement persists for the whole " << 100
              << "-round margin) inside the full Theorem 1 construction.\n";
  }
  return 0;
}
