// Experiments E7 and E8: the pulling model of Section 5.
//  * E7 (Theorem 4 / Corollary 4): messages pulled per node per round --
//    O(k log eta) per level instead of n -- and the quality of counting
//    (longest valid window) as a function of the sample size M.
//  * E8 (Corollary 5): the pseudo-random variant with per-node sampling bits
//    fixed once; against an oblivious adversary a good seed stabilises and
//    then counts deterministically. We report the fraction of good seeds.
//
// Usage: bench_pulling [--seeds=N] [--deep]
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "counting/trivial.hpp"
#include "pulling/pulling_counter.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace synccount;

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int("seeds", 5));
  const bool deep = cli.get_bool("deep");

  std::cout << "=== E7: pulls per round (Theorem 4 / Corollary 4) ===\n\n";
  {
    util::Table table({"f", "N", "broadcast msgs/node/round", "M", "pulls/node/round",
                       "pull fraction"});
    std::vector<int> targets = {1, 3, 7};
    if (deep) targets.push_back(15);
    for (int f : targets) {
      const int M = 2 * static_cast<int>(std::ceil(std::log2(1.0 + 4 * std::pow(3.0, f))));
      const auto algo =
          pulling::build_pulling_practical(f, 16, M, pulling::SamplingMode::kFresh);
      const int N = algo->num_nodes();
      sim::RunConfig cfg;
      cfg.algo = algo;
      cfg.max_rounds = 20;
      cfg.seed = 3;
      auto adv = sim::make_adversary("random");
      const auto res = sim::run_execution(cfg, *adv, 2);
      table.add_row({std::to_string(f), std::to_string(N), std::to_string(N),
                     std::to_string(M), std::to_string(res.max_pulls_per_round),
                     util::fmt_double(static_cast<double>(res.max_pulls_per_round) / N, 2)});
    }
    table.print(std::cout);
    std::cout << "\nAt the toy sizes a node pulls a constant multiple of log(eta) messages,\n"
              << "which undercuts full broadcast once N outgrows k*M (the asymptotic\n"
              << "claim: polylog(n) pulls vs n broadcasts).\n";
  }

  std::cout << "\n=== E7b: counting quality vs sample size M (N=4, F=1) ===\n\n";
  {
    // The harshest regime: correct fraction 3/4 vs sampled threshold 2/3.
    util::Table table({"M", "stabilised runs", "longest valid window (mean)",
                       "longest valid window (max)"});
    for (int M : {8, 16, 32, 64, 128, 256}) {
      std::vector<double> windows;
      int stab = 0;
      for (int s = 0; s < seeds; ++s) {
        auto base = std::make_shared<counting::TrivialCounter>(2304);
        pulling::PullParams p;
        p.k = 4;
        p.F = 1;
        p.C = 8;
        p.sample_size = M;
        const auto algo = std::make_shared<pulling::PullingBoostedCounter>(base, p);
        sim::RunConfig cfg;
        cfg.algo = algo;
        cfg.faulty = sim::faults_prefix(4, 1);
        cfg.max_rounds = 2304 + 600;
        cfg.seed = 0x7000 + static_cast<std::uint64_t>(s);
        auto adv = sim::make_adversary("split");
        const auto res = sim::run_execution(cfg, *adv, 150);
        stab += res.stabilised ? 1 : 0;
        windows.push_back(static_cast<double>(res.max_window));
      }
      const auto s = util::summarize(windows);
      table.add_row({std::to_string(M), std::to_string(stab) + "/" + std::to_string(seeds),
                     util::fmt_double(s.mean, 0), util::fmt_double(s.max, 0)});
    }
    table.print(std::cout);
    std::cout << "\nWindows lengthen with M: the per-round failure probability decays\n"
              << "exponentially in M (Lemma 8), 'in the extreme case, by sampling all\n"
              << "nodes the algorithm reduces to the deterministic case'.\n";
  }

  std::cout << "\n=== E8: pseudo-random variant, oblivious adversary (Corollary 5) ===\n\n";
  {
    util::Table table({"M", "good seeds (stabilised & persisted)", "fraction"});
    for (int M : {16, 32, 48, 96}) {
      int good = 0;
      const int trials = std::max(seeds, 10);
      for (int s = 0; s < trials; ++s) {
        auto base = std::make_shared<counting::TrivialCounter>(2304);
        pulling::PullParams p;
        p.k = 4;
        p.F = 1;
        p.C = 8;
        p.sample_size = M;
        p.mode = pulling::SamplingMode::kFixed;
        p.seed = 0xC0FFEE + static_cast<std::uint64_t>(s) * 7919;
        const auto algo = std::make_shared<pulling::PullingBoostedCounter>(base, p);
        sim::RunConfig cfg;
        cfg.algo = algo;
        cfg.faulty = sim::faults_prefix(4, 1);  // chosen independently of the seeds
        cfg.max_rounds = 2304 + 400;
        cfg.seed = 0x8000 + static_cast<std::uint64_t>(s);
        auto adv = sim::make_adversary("split");
        const auto res = sim::run_execution(cfg, *adv, 200);
        good += res.stabilised ? 1 : 0;
      }
      table.add_row({std::to_string(M), std::to_string(good) + "/" + std::to_string(trials),
                     util::fmt_double(static_cast<double>(good) / trials, 2)});
    }
    table.print(std::cout);
    std::cout << "\nWith fixed per-node sampling bits the execution is deterministic: a\n"
              << "good sample set keeps counting forever (no per-round failure), and\n"
              << "the fraction of good seeds grows with M -- Corollary 5.\n";
  }
  return 0;
}
