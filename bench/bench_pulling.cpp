// Experiments E7 and E8: the pulling model of Section 5, driven end-to-end
// by the experiment engine (which runs the eligible cell-groups on the
// composed batched backend).
//  * E7 (Theorem 4 / Corollary 4): messages pulled per node per round --
//    O(k log eta) per level instead of n -- and the quality of counting
//    (longest valid window) as a function of the sample size M.
//  * E8 (Corollary 5): the pseudo-random variant with per-node sampling bits
//    fixed once; against an oblivious adversary a good seed stabilises and
//    then counts deterministically. We report the fraction of good seeds.
//    The sampling seed is a declarative sweep axis: one AlgorithmSpec
//    variant per trial (counting::sweep_u64 over "sampling_seed"), so the
//    whole experiment serialises and replays via spec files (variant cells
//    run on the scalar backend).
//
// Usage: bench_pulling [--seeds=N] [--deep] [--threads=N]
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "counting/trivial.hpp"
#include "pulling/pulling_counter.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace synccount;

std::shared_ptr<pulling::PullingBoostedCounter> small_pulling(int M, pulling::SamplingMode mode,
                                                              std::uint64_t seed) {
  auto base = std::make_shared<counting::TrivialCounter>(2304);
  pulling::PullParams p;
  p.k = 4;
  p.F = 1;
  p.C = 8;
  p.sample_size = M;
  p.mode = mode;
  p.seed = seed;
  return std::make_shared<pulling::PullingBoostedCounter>(base, p);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int("seeds", 5));
  const bool deep = cli.get_bool("deep");
  const bench::Harness harness(cli);

  std::cout << "=== E7: pulls per round (Theorem 4 / Corollary 4) ===\n\n";
  {
    util::Table table({"f", "N", "broadcast msgs/node/round", "M", "pulls/node/round",
                       "pull fraction", "batched cells"});
    std::vector<int> targets = {1, 3, 7};
    if (deep) targets.push_back(15);
    for (int f : targets) {
      const int M = 2 * static_cast<int>(std::ceil(std::log2(1.0 + 4 * std::pow(3.0, f))));
      const auto algo =
          pulling::build_pulling_practical(f, 16, M, pulling::SamplingMode::kFresh);
      const int N = algo->num_nodes();
      sim::ExperimentSpec spec;
      spec.algo = algo;
      spec.adversaries = {"random"};
      spec.seeds = seeds;
      spec.max_rounds = 20;
      spec.margin = 2;
      const auto res = harness.run("E7-f" + std::to_string(f), spec);
      table.add_row({std::to_string(f), std::to_string(N), std::to_string(N),
                     std::to_string(M), std::to_string(res.total.max_pulls),
                     util::fmt_double(static_cast<double>(res.total.max_pulls) / N, 2),
                     std::to_string(res.batched_cells)});
    }
    table.print(std::cout);
    std::cout << "\nAt the toy sizes a node pulls a constant multiple of log(eta) messages,\n"
              << "which undercuts full broadcast once N outgrows k*M (the asymptotic\n"
              << "claim: polylog(n) pulls vs n broadcasts).\n";
  }

  std::cout << "\n=== E7b: counting quality vs sample size M (N=4, F=1) ===\n\n";
  {
    // The harshest regime: correct fraction 3/4 vs sampled threshold 2/3.
    util::Table table({"M", "stabilised runs", "longest valid window (mean)",
                       "longest valid window (max)", "batched cells"});
    for (int M : {8, 16, 32, 64, 128, 256}) {
      sim::ExperimentSpec spec;
      spec.algo = small_pulling(M, pulling::SamplingMode::kFresh, 0x5eed);
      spec.adversaries = {"split"};
      spec.placements = {{"prefix", sim::faults_prefix(4, 1)}};
      spec.seeds = seeds;
      spec.explicit_seeds.resize(static_cast<std::size_t>(seeds));
      for (int s = 0; s < seeds; ++s) {
        spec.explicit_seeds[static_cast<std::size_t>(s)] = 0x7000 + static_cast<std::uint64_t>(s);
      }
      spec.max_rounds = 2304 + 600;
      spec.margin = 150;
      const auto res = harness.run("E7b-M" + std::to_string(M), spec);
      std::vector<double> windows;
      for (const auto& cell : res.cells) {
        windows.push_back(static_cast<double>(cell.result.max_window));
      }
      const auto s = util::summarize(windows);
      table.add_row({std::to_string(M), bench::fmt_rate(res.total),
                     util::fmt_double(s.mean, 0), util::fmt_double(s.max, 0),
                     std::to_string(res.batched_cells)});
    }
    table.print(std::cout);
    std::cout << "\nWindows lengthen with M: the per-round failure probability decays\n"
              << "exponentially in M (Lemma 8), 'in the extreme case, by sampling all\n"
              << "nodes the algorithm reduces to the deterministic case'.\n";
  }

  std::cout << "\n=== E8: pseudo-random variant, oblivious adversary (Corollary 5) ===\n\n";
  {
    util::Table table({"M", "good seeds (stabilised & persisted)", "fraction"});
    for (int M : {16, 32, 48, 96}) {
      const int trials = std::max(seeds, 10);
      sim::ExperimentSpec spec;
      // One algorithm variant per trial: the sampling seed is the quantity
      // under test, swept as data over the seed axis.
      std::vector<std::uint64_t> sampling_seeds;
      for (int t = 0; t < trials; ++t) {
        sampling_seeds.push_back(0xC0FFEE + static_cast<std::uint64_t>(t) * 7919);
      }
      spec.variants = counting::sweep_u64(
          *counting::describe(small_pulling(M, pulling::SamplingMode::kFixed, 0)),
          "sampling_seed", sampling_seeds);
      spec.adversaries = {"split"};
      spec.placements = {{"prefix", sim::faults_prefix(4, 1)}};  // independent of the seeds
      spec.seeds = trials;
      spec.explicit_seeds.resize(static_cast<std::size_t>(trials));
      for (int s = 0; s < trials; ++s) {
        spec.explicit_seeds[static_cast<std::size_t>(s)] = 0x8000 + static_cast<std::uint64_t>(s);
      }
      spec.max_rounds = 2304 + 400;
      spec.margin = 200;
      const auto res = harness.run("E8-M" + std::to_string(M), spec);
      table.add_row({std::to_string(M), bench::fmt_rate(res.total),
                     util::fmt_double(res.total.stabilisation_rate(), 2)});
    }
    table.print(std::cout);
    std::cout << "\nWith fixed per-node sampling bits the execution is deterministic: a\n"
              << "good sample set keeps counting forever (no per-round failure), and\n"
              << "the fraction of good seeds grows with M -- Corollary 5.\n";
  }
  return 0;
}
