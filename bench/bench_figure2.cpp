// Experiment E3: regenerate Figure 2 -- the recursive construction
// A(4,1) -> A(12,3) -> A(36,7) -- and actually run it: 36 nodes, 7 Byzantine
// (including a fully faulty 12-node block, as drawn), measuring stabilisation
// against the Theorem 1 bound and the state bits against the closed form.
//
// Usage: bench_figure2 [--seeds=N] [--deep]
#include <iostream>

#include "bench_common.hpp"
#include "boosting/planner.hpp"
#include "util/math.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace synccount;
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int("seeds", 3));
  const bool deep = cli.get_bool("deep");

  std::cout << "=== Figure 2 (reproduction): recursive construction ===\n\n";

  // The recursion tree, printed level by level.
  const auto plan = boosting::plan_practical(7, 10);
  std::cout << "  trivial 1-node counter, modulus " << plan.base_modulus << "\n";
  std::uint64_t n = 1;
  std::uint64_t t_bound = 0;
  for (const auto& lv : plan.levels) {
    n *= static_cast<std::uint64_t>(lv.k);
    t_bound += boosting::required_input_modulus(lv.k, lv.F);
    std::cout << "  -> A(" << n << ", " << lv.F << ", " << lv.C << ")  [k=" << lv.k
              << " blocks, level cost 3(F+2)(2m)^k = "
              << boosting::required_input_modulus(lv.k, lv.F) << "]\n";
  }
  const auto algo = boosting::build_plan(plan);
  std::cout << "\nTheorem 1 accounting: T(B) <= " << *algo->stabilisation_bound()
            << " rounds, S(B) = " << algo->state_bits() << " bits per node.\n\n";

  // Fault placements, in increasing nastiness (Figure 2 draws a fully faulty
  // block plus scattered faults); one declarative spec covers the whole
  // placements x adversaries x seeds grid.
  const bench::Harness harness(cli);
  sim::ExperimentSpec spec;
  spec.algo = algo;
  spec.placements = {
      {"spread over all blocks", sim::faults_spread(36, 7)},
      {"one 12-node block fully faulty + spill", sim::faults_block_concentrated(3, 12, 3, 7)},
      {"leader blocks targeted", sim::faults_leader_blocks(3, 12, 3, 7)},
  };
  spec.adversaries = deep ? std::vector<std::string>{"split", "targeted-vote", "lookahead"}
                          : std::vector<std::string>{"split", "targeted-vote"};
  spec.seeds = seeds;
  spec.stop_after_stable = 120;
  spec.margin = 100;
  const auto result = harness.run("figure2", spec);

  util::Table table({"fault placement", "runs", "stabilised", "T measured mean (max)",
                     "T bound", "bound respected"});
  for (std::size_t p = 0; p < spec.placements.size(); ++p) {
    const auto m = result.aggregate(std::nullopt, p);
    const bool ok = m.stabilised == m.runs &&
                    m.stabilisation.max() <= static_cast<double>(*algo->stabilisation_bound());
    table.add_row({spec.placements[p].name, std::to_string(m.runs), std::to_string(m.stabilised),
                   bench::fmt_rounds(m), util::fmt_u64(*algo->stabilisation_bound()),
                   ok ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\n(" << result.cells.size() << " executions in "
            << util::fmt_double(result.wall_seconds, 2) << "s on "
            << harness.threads() << " threads)\n";

  std::cout << "\nState-bit accounting per level (S(B) = S(A) + ceil(log(C+1)) + 1):\n";
  util::Table bits({"level", "algorithm", "state bits"});
  bits.add_row({"base", "trivial(" + std::to_string(plan.base_modulus) + ")",
                std::to_string(util::ceil_log2(plan.base_modulus))});
  int acc = util::ceil_log2(plan.base_modulus);
  int level = 1;
  for (const auto& lv : plan.levels) {
    acc += util::ceil_log2(lv.C + 1) + 1;
    bits.add_row({std::to_string(level++), "boost(k=" + std::to_string(lv.k) + ",F=" +
                                               std::to_string(lv.F) + ",C=" + std::to_string(lv.C) + ")",
                  std::to_string(acc)});
  }
  bits.print(std::cout);
  return 0;
}
