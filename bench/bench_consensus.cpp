// Experiment E12 (extension): counting => consensus (paper Section 1: the
// two problems are interreducible). Measures the repeated-consensus service
// built on the Theorem 1 counters: decision correctness per window after
// stabilisation, across adversaries and proposal patterns.
//
// Usage: bench_consensus [--seeds=N] [--threads=N]
#include <iostream>
#include <set>

#include "apps/repeated_consensus.hpp"
#include "bench_common.hpp"
#include "boosting/planner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace synccount;
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int("seeds", 3));
  const bench::Harness harness(cli);

  std::cout << "=== E12: repeated consensus on top of the counters ===\n\n";

  struct Case {
    int f;
    std::string proposals;  // "unanimous" or "mixed"
    std::string adversary;
  };
  const std::vector<Case> cases = {
      {1, "unanimous", "split"},   {1, "mixed", "split"},
      {1, "mixed", "lookahead"},   {3, "unanimous", "targeted-vote"},
      {3, "mixed", "split"},       {3, "mixed", "random"},
  };

  util::Table table({"f", "N", "proposals", "adversary", "windows checked",
                     "agreement violations", "validity violations"});
  for (const auto& c : cases) {
    const int tau = 3 * (c.f + 2);
    const auto counter = boosting::build_plan(
        boosting::plan_practical(c.f, static_cast<std::uint64_t>(tau)));
    const int n = counter->num_nodes();

    std::vector<std::uint64_t> proposals(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < proposals.size(); ++i) {
      proposals[i] = c.proposals == "unanimous" ? 5 : (i % 7);
    }
    const auto svc = std::make_shared<apps::RepeatedConsensus>(counter, c.f, 8, proposals);

    // The seed grid runs through the engine; explicit seeds keep the
    // executions identical to the historical bespoke loop (0xC0, 0xC1, ...).
    sim::ExperimentSpec spec;
    spec.algo = svc;
    spec.adversaries = {c.adversary};
    spec.placements = {{"spread", sim::faults_spread(n, c.f)}};
    spec.seeds = seeds;
    spec.explicit_seeds.resize(static_cast<std::size_t>(seeds));
    for (int s = 0; s < seeds; ++s) {
      spec.explicit_seeds[static_cast<std::size_t>(s)] = 0xC0 + static_cast<std::uint64_t>(s);
    }
    spec.max_rounds = *svc->stabilisation_bound() + 6 * static_cast<std::uint64_t>(tau);
    spec.margin = 1;
    // The window inspection below needs the full output traces retained.
    sim::RecordSink record(/*outputs=*/true);
    const auto result = harness.run(
        "E12-f" + std::to_string(c.f) + "-" + c.proposals + "-" + c.adversary, spec,
        {&record});

    // Inspect decisions at window boundaries after the service bound.
    std::uint64_t windows = 0, agreement_bad = 0, validity_bad = 0;
    const std::set<std::uint64_t> allowed(proposals.begin(), proposals.end());
    for (const auto& cell : result.cells) {
      const auto& res = cell.result;
      for (std::uint64_t r = *svc->stabilisation_bound() + 2 * static_cast<std::uint64_t>(tau);
           r < res.rounds; r += static_cast<std::uint64_t>(tau)) {
        ++windows;
        const auto v = res.outputs[r][0];
        for (std::size_t j = 1; j < res.correct_ids.size(); ++j) {
          if (res.outputs[r][j] != v) {
            ++agreement_bad;
            break;
          }
        }
        if (c.proposals == "unanimous" && v != 5) ++validity_bad;
        if (c.proposals == "mixed" && !allowed.count(v)) ++validity_bad;
      }
    }
    table.add_row({std::to_string(c.f), std::to_string(n), c.proposals, c.adversary,
                   std::to_string(windows), std::to_string(agreement_bad),
                   std::to_string(validity_bad)});
  }
  table.print(std::cout);
  std::cout << "\nAgreement must never be violated; with unanimous proposals the\n"
            << "decision must equal the proposal (strong validity); with mixed\n"
            << "proposals the fault-free decisions land in the proposal set.\n"
            << "(With Byzantine proposers, classic phase king only guarantees\n"
            << "agreement on *some* value, so mixed rows check membership only.)\n";
  return 0;
}
