// Experiment E1: regenerate Table 1 of the paper -- the comparison of
// synchronous 2-counting algorithms by resilience, stabilisation time, state
// bits and determinism. Rows marked "measured" are produced by running the
// actual implementations in this repository (worst observed stabilisation
// over seeds and adversaries, plus the exact/closed-form bound); rows marked
// "analytic" reproduce the cited prior-work bounds ([2] is not reimplemented
// -- see DESIGN.md, Substitutions).
//
// Usage: bench_table1 [--seeds=N] [--deep]
#include <iostream>

#include "bench_common.hpp"
#include "boosting/planner.hpp"
#include "counting/randomized.hpp"
#include "synthesis/known_tables.hpp"
#include "synthesis/synthesize.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace synccount;

std::string bound_str(const counting::AlgorithmPtr& algo) {
  const auto b = algo->stabilisation_bound();
  return b ? util::fmt_u64(*b) : std::string("-");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int("seeds", 3));
  const bool deep = cli.get_bool("deep");
  const bench::Harness harness(cli);

  std::cout << "=== Table 1 (reproduction): synchronous 2-counting algorithms ===\n"
            << "Stabilisation 'measured' = mean (max) over seeds x {split, random"
            << (deep ? ", lookahead" : "") << "} adversaries with f Byzantine nodes.\n\n";

  util::Table table({"algorithm", "n", "resilience", "T (paper)", "T (bound)", "T (measured)",
                     "state bits", "det.", "source"});

  bench::MeasureOptions opt;
  opt.seeds = seeds;
  opt.adversaries = {"split", "random"};
  if (deep) opt.adversaries.push_back("lookahead");
  opt.stop_after_stable = 150;
  opt.margin = 100;

  // --- Prior work, cited bounds only -----------------------------------------
  table.add_row({"[2] Dolev-Hoch", "any", "f < n/3", "O(f)", "-", "-", "O(f log f)", "yes",
                 "analytic"});
  table.add_row({"[6,7] randomized", "any", "f < n/3", "2^{2(n-f)} exp.", "-", "-",
                 "O(log c)", "no", "analytic"});

  // --- [6,7] randomized baseline, measured at small n -------------------------
  for (const auto& [n, f] : std::vector<std::pair<int, int>>{{4, 1}, {6, 1}, {7, 2}}) {
    const auto algo = std::make_shared<counting::RandomizedCounter>(n, f, 2);
    bench::MeasureOptions ropt = opt;
    ropt.horizon_override = 60000;
    const auto m = bench::measure_stabilisation(
        harness, "randomized-n" + std::to_string(n) + "-f" + std::to_string(f), algo,
        sim::faults_prefix(n, f), ropt);
    table.add_row({"[6,7] randomized", std::to_string(n), std::to_string(f),
                   "2^{2(n-f)} exp.", "-", bench::fmt_rounds(m),
                   std::to_string(algo->state_bits()), "no", "measured"});
  }

  // --- Computer-designed blocks (the [5] rows) --------------------------------
  {
    const auto algo = synthesis::computer_designed_4_1();
    const auto m = bench::measure_stabilisation(harness, "synthesized-3states", algo,
                                                sim::faults_prefix(4, 1), opt);
    table.add_row({"[5]-style synthesized (3 states, cyclic)", "4", "1", "7", bound_str(algo),
                   bench::fmt_rounds(m), std::to_string(algo->state_bits()), "yes",
                   "synthesized+verified"});
  }
  {
    const auto algo =
        std::make_shared<counting::TableAlgorithm>(synthesis::known_table_4_1_4states());
    const auto m = bench::measure_stabilisation(harness, "synthesized-4states", algo,
                                                sim::faults_prefix(4, 1), opt);
    table.add_row({"[5]-style synthesized (4 states, uniform)", "4", "1", "7", bound_str(algo),
                   bench::fmt_rounds(m), std::to_string(algo->state_bits()), "yes",
                   "synthesized+verified"});
  }

  // --- Corollary 1: optimal resilience, f^{O(f)} time --------------------------
  {
    const auto algo = boosting::build_plan(boosting::plan_corollary1(1, 2));
    const auto m = bench::measure_stabilisation(harness, "corollary1-f1", algo,
                                                sim::faults_prefix(4, 1), opt);
    table.add_row({"Cor. 1 (trivial base, k=3F+1)", "4", "1", "f^{O(f)}", bound_str(algo),
                   bench::fmt_rounds(m), std::to_string(algo->state_bits()), "yes", "measured"});
  }
  for (int F : {2, 3}) {
    // Simulation is infeasible (the bound is the point: super-exponential).
    const auto plan = boosting::plan_corollary1(F, 2);
    const auto algo = boosting::build_plan(plan);
    table.add_row({"Cor. 1 (trivial base, k=3F+1)", std::to_string(3 * F + 1),
                   std::to_string(F), "f^{O(f)}", bound_str(algo), "-",
                   std::to_string(algo->state_bits()), "yes", "bound only"});
  }

  // --- This work: Theorem 1 recursion (practical schedule) --------------------
  for (int f : {1, 3, 7}) {
    const auto algo = boosting::build_plan(boosting::plan_practical(f, 2));
    const int n = algo->num_nodes();
    const int block = f == 1 ? n : n / 3;
    const int f_inner = f == 1 ? 0 : (f - 1) / 2;
    const auto faulty = f == 1 ? sim::faults_prefix(n, f)
                               : sim::faults_block_concentrated(3, block, f_inner, f);
    const auto m = bench::measure_stabilisation(harness, "thm1-f" + std::to_string(f),
                                                algo, faulty, opt);
    table.add_row({"this work (Thm 1 recursion)", std::to_string(n), std::to_string(f), "O(f)",
                   bound_str(algo), bench::fmt_rounds(m), std::to_string(algo->state_bits()),
                   "yes", "measured"});
  }
  if (deep) {
    const auto algo = boosting::build_plan(boosting::plan_practical(15, 2));
    const auto faulty = sim::faults_block_concentrated(3, 36, 7, 15);
    const auto m = bench::measure_stabilisation(harness, "thm1-f15", algo, faulty, opt);
    table.add_row({"this work (Thm 1 recursion)", std::to_string(algo->num_nodes()), "15",
                   "O(f)", bound_str(algo), bench::fmt_rounds(m),
                   std::to_string(algo->state_bits()), "yes", "measured"});
  }

  // --- This work, asymptotic row ------------------------------------------------
  table.add_row({"this work (Thm 3 schedule)", "any", "n^{1-o(1)}", "O(f)", "-", "-",
                 "O(log^2 f / loglog f)", "yes", "analytic (see bench_scaling_*)"});

  table.print(std::cout);
  std::cout << "\nNotes:\n"
            << " * 'T (paper)' quotes Table 1 of the paper; '[5]' reports 7 rounds for\n"
            << "   n >= 4, f = 1 -- our own synthesis finds 3-state cyclic algorithms\n"
            << "   with certified worst-case time 6 (see bench_synthesis).\n"
            << " * [2] is cited prior work with its own machinery (self-stabilising\n"
            << "   Byzantine agreement); reproduced analytically only.\n";
  return 0;
}
