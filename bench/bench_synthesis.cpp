// Experiment E9: the computational algorithm design pipeline ([4,5];
// paper Section 1). Re-discovers the small computer-designed counters live:
//  * n = 4, f = 1, |X| = 2: UNSAT -- one state bit is not enough (optimality,
//    as reported in [4,5]);
//  * n = 4, f = 1, |X| = 3 uniform: UNSAT for every admissible time bound up
//    to 16 -- position-indexed identical programs cannot do it;
//  * n = 4, f = 1, |X| = 3 cyclic: SAT, certified exact worst-case time 6 --
//    the "3 states per node" algorithm class of [5];
//  * --deep adds |X| = 4 uniform (T = 8) and the n = 6 single-bit search.
// Reports CNF sizes, solver statistics and verifier-certified times.
//
// Every FOUND table is additionally re-validated *empirically*: an engine
// sweep (seeds x adversaries on the batched table backend) checks that the
// observed stabilisation never exceeds the verifier-certified worst case.
//
// Usage: bench_synthesis [--deep] [--budget=CONFLICTS] [--sim-seeds=N]
//                        [--threads=N]
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "synthesis/synthesize.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace synccount;
using Clock = std::chrono::steady_clock;

struct Row {
  std::string what;
  synthesis::SynthesisSpec spec;
  synthesis::SynthesisOptions opt;
};

// Empirical cross-check of a freshly synthesised table: run it through the
// experiment engine (batched backend) and confirm no execution stabilises
// later than the verifier-certified exact worst case.
std::string engine_check(const bench::Harness& harness, const std::string& label,
                         const synthesis::SynthesisOutcome& out, int sim_seeds) {
  const auto algo = std::make_shared<counting::TableAlgorithm>(out.table);
  sim::ExperimentSpec spec;
  spec.algo = algo;
  spec.adversaries = {"silent", "split", "random"};
  spec.placements = {{"spread", sim::faults_spread(out.table.n, out.table.f)}};
  spec.seeds = sim_seeds;
  spec.max_rounds = out.exact_time + 64;
  spec.margin = 32;
  const auto res = harness.run(label, spec);
  std::uint64_t worst = 0;
  for (const auto& cell : res.cells) {
    worst = std::max(worst, cell.result.stabilisation_round);
  }
  if (res.total.stabilised != res.total.runs) {
    return "FAILED: " + bench::fmt_rate(res.total) + " stabilised";
  }
  if (worst > out.exact_time) {
    return "FAILED: observed T=" + std::to_string(worst) + " > certified";
  }
  return "ok (" + bench::fmt_rate(res.total) + ", obs T<=" + std::to_string(worst) + ")";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool deep = cli.get_bool("deep");
  const std::uint64_t budget = cli.get_u64("budget", 120000);
  const int sim_seeds = static_cast<int>(cli.get_int("sim-seeds", 64));
  const bench::Harness harness(cli);

  std::cout << "=== E9: SAT-based algorithm synthesis (reproducing [4,5]) ===\n\n";

  std::vector<Row> rows;
  {
    Row r;
    r.what = "n=4 f=1 |X|=2 uniform";
    r.spec = {4, 1, 2, 2, counting::Symmetry::kUniform, 1};
    r.opt = {1, 10, budget};
    rows.push_back(r);
  }
  {
    Row r;
    r.what = "n=4 f=1 |X|=3 uniform";
    r.spec = {4, 1, 3, 2, counting::Symmetry::kUniform, 1};
    r.opt = {1, 16, budget};
    rows.push_back(r);
  }
  {
    Row r;
    r.what = "n=4 f=1 |X|=3 cyclic";
    r.spec = {4, 1, 3, 2, counting::Symmetry::kCyclic, 1};
    r.opt = {7, 8, budget};
    rows.push_back(r);
  }
  if (deep) {
    {
      // The minimal-time discovery: T = 6 is SAT (the embedded table), and
      // this row re-finds it live.
      Row r;
      r.what = "n=4 f=1 |X|=3 cyclic (minimal T)";
      r.spec = {4, 1, 3, 2, counting::Symmetry::kCyclic, 1};
      r.opt = {6, 6, 500000};
      rows.push_back(r);
    }
    {
      Row r;
      r.what = "n=4 f=1 |X|=4 uniform";
      r.spec = {4, 1, 4, 2, counting::Symmetry::kUniform, 1};
      r.opt = {8, 8, 500000};
      rows.push_back(r);
    }
    {
      Row r;
      r.what = "n=6 f=1 |X|=2 cyclic";
      r.spec = {6, 1, 2, 2, counting::Symmetry::kCyclic, 1};
      r.opt = {5, 8, 2000000};
      rows.push_back(r);
    }
  }

  util::Table table({"instance", "mode", "time sweep", "result", "exact T", "vars",
                     "clauses", "conflicts", "wall s", "engine check"});
  for (auto& row : rows) {
    for (const bool incremental : {false, true}) {
      const auto t0 = Clock::now();
      const auto out = incremental ? synthesize_incremental(row.spec, row.opt)
                                   : synthesize(row.spec, row.opt);
      const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
      std::string result;
      if (out.found) {
        result = "FOUND";
      } else if (out.budget_exhausted) {
        result = "budget exhausted";
      } else {
        result = "UNSAT (proof)";
      }
      std::string sweep = "[";
      sweep += std::to_string(row.opt.min_time);
      sweep += ",";
      sweep += std::to_string(row.opt.max_time);
      sweep += "]";
      table.add_row({row.what, incremental ? "incremental" : "re-encode", sweep,
                     result, out.found ? std::to_string(out.exact_time) : "-",
                     std::to_string(out.last_size.variables),
                     std::to_string(out.last_size.clauses),
                     std::to_string(out.total_conflicts), util::fmt_double(secs, 2),
                     out.found ? engine_check(harness, "E9-check-" + row.what, out, sim_seeds)
                               : "-"});
    }
  }
  table.print(std::cout);

  std::cout << "\nEvery FOUND table is re-certified by the exact verifier (adversarial\n"
            << "game solving over all faulty sets) and then re-validated empirically:\n"
            << "an engine sweep on the batched backend must never observe stabilisation\n"
            << "later than the certified worst case. Every UNSAT line is a proof that no\n"
            << "such algorithm exists in that symmetry class and time sweep.\n"
            << "Run with --deep for the |X|=4 uniform (T=8) and n=6 single-bit rows.\n";
  return 0;
}
