// Experiment E9: the computational algorithm design pipeline ([4,5];
// paper Section 1). Re-discovers the small computer-designed counters live:
//  * n = 4, f = 1, |X| = 2: UNSAT -- one state bit is not enough (optimality,
//    as reported in [4,5]);
//  * n = 4, f = 1, |X| = 3 uniform: UNSAT for every admissible time bound up
//    to 16 -- position-indexed identical programs cannot do it;
//  * n = 4, f = 1, |X| = 3 cyclic: SAT, certified exact worst-case time 6 --
//    the "3 states per node" algorithm class of [5];
//  * --deep adds |X| = 4 uniform (T = 8) and the n = 6 single-bit search.
// Reports CNF sizes, solver statistics and verifier-certified times.
//
// Every FOUND table is additionally re-validated *empirically*: an engine
// sweep (seeds x adversaries on the batched table backend) checks that the
// observed stabilisation never exceeds the verifier-certified worst case.
//
// `bench_synthesis --json [path]` instead runs the parallel-engine perf
// smoke: the |X| = 3 cyclic minimal-time re-discovery (R = 6, unlimited
// budget) single-threaded vs portfolio-only vs portfolio+cubes, and merges
// a "synthesis" section into the bench_micro --json record at `path`
// (read-modify-write -- run it AFTER bench_micro, which rewrites the whole
// file). check_perf_smoke.py gates the recorded speedups.
//
// Usage: bench_synthesis [--deep] [--budget=CONFLICTS] [--sim-seeds=N]
//                        [--threads=N] [--json[=PATH]]
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "synthesis/portfolio.hpp"
#include "synthesis/synthesize.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace synccount;
using Clock = std::chrono::steady_clock;

struct Row {
  std::string what;
  synthesis::SynthesisSpec spec;
  synthesis::SynthesisOptions opt;
};

// Empirical cross-check of a freshly synthesised table: run it through the
// experiment engine (batched backend) and confirm no execution stabilises
// later than the verifier-certified exact worst case.
std::string engine_check(const bench::Harness& harness, const std::string& label,
                         const synthesis::SynthesisOutcome& out, int sim_seeds) {
  const auto algo = std::make_shared<counting::TableAlgorithm>(out.table);
  sim::ExperimentSpec spec;
  spec.algo = algo;
  spec.adversaries = {"silent", "split", "random"};
  spec.placements = {{"spread", sim::faults_spread(out.table.n, out.table.f)}};
  spec.seeds = sim_seeds;
  spec.max_rounds = out.exact_time + 64;
  spec.margin = 32;
  const auto res = harness.run(label, spec);
  std::uint64_t worst = 0;
  for (const auto& cell : res.cells) {
    worst = std::max(worst, cell.result.stabilisation_round);
  }
  if (res.total.stabilised != res.total.runs) {
    return "FAILED: " + bench::fmt_rate(res.total) + " stabilised";
  }
  if (worst > out.exact_time) {
    return "FAILED: observed T=" + std::to_string(worst) + " > certified";
  }
  return "ok (" + bench::fmt_rate(res.total) + ", obs T<=" + std::to_string(worst) + ")";
}

// --- Parallel-engine perf smoke (--json) -------------------------------------

// The re-discovery workload: the minimal-time instance of the embedded
// 4/1/3-state cyclic counter, solved to completion (unlimited budget) so all
// three modes have identical complete-search semantics and the comparison is
// pure search-strategy speedup.
int run_json_smoke(const std::string& path, int threads) {
  synthesis::SynthesisSpec spec{4, 1, 3, 2, counting::Symmetry::kCyclic, 6};
  synthesis::SynthesisOptions base{6, 6, 0};

  const auto t0 = Clock::now();
  const synthesis::SynthesisOutcome baseline = synthesize_incremental(spec, base);
  const double baseline_ms =
      1e3 * std::chrono::duration<double>(Clock::now() - t0).count();
  if (!baseline.found || baseline.exact_time != 6) {
    std::cerr << "baseline run failed to re-discover the R=6 table\n";
    return 1;
  }

  struct Mode {
    const char* name;
    int cube_depth;
  };
  util::Json modes = util::Json::array();
  std::cout << "baseline (incremental, 1 thread): " << baseline_ms << " ms, "
            << baseline.total_conflicts << " conflicts\n";
  for (const Mode mode : {Mode{"portfolio", 0}, Mode{"cubed", 3}}) {
    synthesis::ParallelOptions opt;
    opt.base = base;
    opt.portfolio = 4;
    opt.cube_depth = mode.cube_depth;
    opt.threads = threads;
    const auto t1 = Clock::now();
    const synthesis::SynthesisOutcome out = synthesize_portfolio(spec, opt);
    const double ms = 1e3 * std::chrono::duration<double>(Clock::now() - t1).count();
    // Different modes may land on different (equally certified) R = 6
    // tables; what must agree is the certified time, not the model.
    if (!out.found || out.exact_time != 6) {
      std::cerr << mode.name << " run did not re-discover an R=6 table\n";
      return 1;
    }
    util::Json row = util::Json::object();
    row.set("mode", util::Json::string(mode.name));
    row.set("cube_depth", util::Json::number(mode.cube_depth));
    row.set("portfolio", util::Json::number(4));
    row.set("ms", util::Json::number(ms));
    row.set("conflicts", util::Json::number(out.total_conflicts));
    row.set("speedup", util::Json::number(baseline_ms / ms));
    modes.push_back(std::move(row));
    std::cout << mode.name << " (K=4, d=" << mode.cube_depth << "): " << ms << " ms, "
              << out.total_conflicts << " conflicts, speedup "
              << baseline_ms / ms << "x\n";
  }

  util::Json section = util::Json::object();
  section.set("instance", util::Json::string("n=4 f=1 |X|=3 cyclic R=6"));
  section.set("budget", util::Json::number(std::uint64_t{0}));
  section.set("baseline_ms", util::Json::number(baseline_ms));
  section.set("baseline_conflicts", util::Json::number(baseline.total_conflicts));
  section.set("modes", std::move(modes));

  // Merge into the bench_micro record rather than rewriting it: the two
  // benches share one BENCH_batch.json.
  util::Json doc = util::Json::object();
  {
    std::ifstream in(path, std::ios::binary);
    if (in.good()) {
      std::ostringstream raw;
      raw << in.rdbuf();
      try {
        doc = util::Json::parse(raw.str());
      } catch (const std::exception& e) {
        std::cerr << path << " is not valid JSON (" << e.what() << ") -- rewriting\n";
        doc = util::Json::object();
      }
    }
  }
  doc.set("synthesis", std::move(section));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  out << doc.dump() << "\n";
  std::cout << "wrote " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.has("json")) {
    return run_json_smoke(cli.get_string("json", "BENCH_batch.json"),
                          static_cast<int>(cli.get_int("threads", 0)));
  }
  const bool deep = cli.get_bool("deep");
  const std::uint64_t budget = cli.get_u64("budget", 120000);
  const int sim_seeds = static_cast<int>(cli.get_int("sim-seeds", 64));
  const bench::Harness harness(cli);

  std::cout << "=== E9: SAT-based algorithm synthesis (reproducing [4,5]) ===\n\n";

  std::vector<Row> rows;
  {
    Row r;
    r.what = "n=4 f=1 |X|=2 uniform";
    r.spec = {4, 1, 2, 2, counting::Symmetry::kUniform, 1};
    r.opt = {1, 10, budget};
    rows.push_back(r);
  }
  {
    Row r;
    r.what = "n=4 f=1 |X|=3 uniform";
    r.spec = {4, 1, 3, 2, counting::Symmetry::kUniform, 1};
    r.opt = {1, 16, budget};
    rows.push_back(r);
  }
  {
    Row r;
    r.what = "n=4 f=1 |X|=3 cyclic";
    r.spec = {4, 1, 3, 2, counting::Symmetry::kCyclic, 1};
    r.opt = {7, 8, budget};
    rows.push_back(r);
  }
  if (deep) {
    {
      // The minimal-time discovery: T = 6 is SAT (the embedded table), and
      // this row re-finds it live.
      Row r;
      r.what = "n=4 f=1 |X|=3 cyclic (minimal T)";
      r.spec = {4, 1, 3, 2, counting::Symmetry::kCyclic, 1};
      r.opt = {6, 6, 500000};
      rows.push_back(r);
    }
    {
      Row r;
      r.what = "n=4 f=1 |X|=4 uniform";
      r.spec = {4, 1, 4, 2, counting::Symmetry::kUniform, 1};
      r.opt = {8, 8, 500000};
      rows.push_back(r);
    }
    {
      Row r;
      r.what = "n=6 f=1 |X|=2 cyclic";
      r.spec = {6, 1, 2, 2, counting::Symmetry::kCyclic, 1};
      r.opt = {5, 8, 2000000};
      rows.push_back(r);
    }
  }

  util::Table table({"instance", "mode", "time sweep", "result", "exact T", "vars",
                     "clauses", "conflicts", "wall s", "engine check"});
  for (auto& row : rows) {
    for (const bool incremental : {false, true}) {
      const auto t0 = Clock::now();
      const auto out = incremental ? synthesize_incremental(row.spec, row.opt)
                                   : synthesize(row.spec, row.opt);
      const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
      std::string result;
      if (out.found) {
        result = "FOUND";
      } else if (out.budget_exhausted) {
        result = "budget exhausted";
      } else {
        result = "UNSAT (proof)";
      }
      std::string sweep = "[";
      sweep += std::to_string(row.opt.min_time);
      sweep += ",";
      sweep += std::to_string(row.opt.max_time);
      sweep += "]";
      table.add_row({row.what, incremental ? "incremental" : "re-encode", sweep,
                     result, out.found ? std::to_string(out.exact_time) : "-",
                     std::to_string(out.last_size.variables),
                     std::to_string(out.last_size.clauses),
                     std::to_string(out.total_conflicts), util::fmt_double(secs, 2),
                     out.found ? engine_check(harness, "E9-check-" + row.what, out, sim_seeds)
                               : "-"});
    }
  }
  table.print(std::cout);

  std::cout << "\nEvery FOUND table is re-certified by the exact verifier (adversarial\n"
            << "game solving over all faulty sets) and then re-validated empirically:\n"
            << "an engine sweep on the batched backend must never observe stabilisation\n"
            << "later than the certified worst case. Every UNSAT line is a proof that no\n"
            << "such algorithm exists in that symmetry class and time sweep.\n"
            << "Run with --deep for the |X|=4 uniform (T=8) and n=6 single-bit rows.\n";
  return 0;
}
